// POST /v1/plan/sweep — portfolio planning. A sweep plans a whole scale
// curve (device counts, α values, layer counts, batch sizes) in ONE request
// holding ONE admission slot, sharing search intermediates through the
// server's SearchCache: later points reuse the node evaluations, edge
// matrices and segment DP tables earlier points (or earlier requests)
// inserted, so a 4-point curve costs far less than 4 independent cold plans
// — while every point's strategy and digest stays byte-identical to what an
// individual /v1/plan of that point returns (pinned by the delta-equivalence
// fuzz in internal/core and by the CI smoke's digest diff).
//
// Failure semantics: an invalid point (bad devices, unknown field values)
// sheds THAT point — its slot in results carries the uniform error envelope
// — and the sweep continues. Context cancellation or the request deadline
// expiring fails the whole sweep (499/504), since the remaining points could
// only be partial. Between points the admission deadline policy is
// re-checked, so a sweep that outlives its client shed its tail instead of
// searching it. Sweeps do not join the singleflight group: portfolios differ
// too often for dedup to pay, and the per-point cache sharing already
// collapses the duplicated work.
package main

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/core"
)

// maxSweepPoints bounds one portfolio; larger curves should be split so the
// admission gate can interleave other traffic between them.
const maxSweepPoints = 64

// SweepPoint overrides a subset of the base request's dimensions for one
// portfolio point. Zero-valued (for Alpha: absent) fields inherit the base
// request.
type SweepPoint struct {
	Devices        int      `json:"devices,omitempty"`
	DevicesPerNode int      `json:"devices_per_node,omitempty"`
	Profile        string   `json:"profile,omitempty"`
	Alpha          *float64 `json:"alpha,omitempty"`
	Layers         int      `json:"layers,omitempty"`
	Batch          int      `json:"batch,omitempty"`
	// Pipeline replaces the base request's `pipeline` object for this point
	// (it cannot remove one: an absent field inherits the base, like every
	// other dimension). Points may mix plain and joint plans only when the
	// base itself has no pipeline object.
	Pipeline *PipelineSpec `json:"pipeline,omitempty"`
}

// SweepRequest is the /v1/plan/sweep input: a base PlanRequest (flat, same
// fields as /v1/plan) plus the portfolio points.
type SweepRequest struct {
	PlanRequest
	Points []SweepPoint `json:"points"`
}

// SweepPointResult is one point's outcome, in request order: either the full
// plan or the uniform error envelope, never both. DeltaDims names the
// dimensions on which the resolved point differs from the resolved base —
// the "changed frontier" the delta re-planner worked over.
type SweepPointResult struct {
	Point     SweepPoint     `json:"point"`
	DeltaDims []string       `json:"delta_dims,omitempty"`
	Plan      *PlanResponse  `json:"plan,omitempty"`
	Error     *errorEnvelope `json:"error,omitempty"`
}

// SweepTotals aggregates search work across the planned points — the
// headline numbers for "how much did sharing save": compare NodeEvals and
// SegTablesBuilt against what the same points cost individually cold.
type SweepTotals struct {
	NodeEvals          int64 `json:"node_evals"`
	EdgeMatsBuilt      int64 `json:"edge_mats_built"`
	SegTablesBuilt     int64 `json:"seg_tables_built"`
	CrossCallNodeHits  int64 `json:"cross_call_node_hits"`
	CrossCallEdgeHits  int64 `json:"cross_call_edge_hits"`
	CrossCallTableHits int64 `json:"cross_call_table_hits"`
	// EntriesScanned was min_plus_scanned before the bound-pruning rename.
	EntriesScanned      int64 `json:"entries_scanned"`
	EntriesBoundSkipped int64 `json:"entries_bound_skipped"`
	EdgeCellsReused     int64 `json:"edge_cells_reused"`
	CandsTotal          int64 `json:"cands_total"`
	CandsPruned         int64 `json:"cands_pruned"`
}

func (t *SweepTotals) add(s core.SearchStats) {
	t.NodeEvals += int64(s.NodeEvals)
	t.EdgeMatsBuilt += int64(s.EdgeMatsBuilt)
	t.SegTablesBuilt += int64(s.SegTablesBuilt)
	t.CrossCallNodeHits += int64(s.CrossCallNodeHits)
	t.CrossCallEdgeHits += int64(s.CrossCallEdgeHits)
	t.CrossCallTableHits += int64(s.CrossCallTableHits)
	t.EntriesScanned += s.EntriesScanned
	t.EntriesBoundSkipped += s.EntriesBoundSkipped
	t.EdgeCellsReused += s.EdgeCellsReused
	t.CandsTotal += int64(s.CandsTotal)
	t.CandsPruned += int64(s.CandsPruned)
}

// SweepResponse is the /v1/plan/sweep output.
type SweepResponse struct {
	Model     string             `json:"model"`
	Results   []SweepPointResult `json:"results"`
	Planned   int                `json:"planned"`
	Failed    int                `json:"failed"`
	Totals    SweepTotals        `json:"totals"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// envelopeOf renders an apiError as the uniform JSON envelope (the same
// shape writeError sends top-level, embedded per point here).
func envelopeOf(e *apiError) *errorEnvelope {
	return &errorEnvelope{
		Code:         e.code,
		Message:      e.message,
		Retryable:    e.retryable,
		RetryAfterMS: e.retryAfter.Milliseconds(),
		Error:        e.message,
	}
}

// deltaDims lists the dimensions on which two RESOLVED requests differ.
// Resolved requests always carry a concrete α (preparePlan normalizes the
// pointer), so the comparison dereferences — comparing the pointers
// themselves would flag every point as an α delta.
func deltaDims(base, pt *PlanRequest) []string {
	var d []string
	if pt.Devices != base.Devices {
		d = append(d, "devices")
	}
	if pt.DevicesPerNode != base.DevicesPerNode {
		d = append(d, "devices_per_node")
	}
	if pt.Profile != base.Profile {
		d = append(d, "profile")
	}
	if *pt.Alpha != *base.Alpha {
		d = append(d, "alpha")
	}
	if pt.Layers != base.Layers {
		d = append(d, "layers")
	}
	if pt.Batch != base.Batch {
		d = append(d, "batch")
	}
	if pt.Pipeline.key() != base.Pipeline.key() {
		d = append(d, "pipeline")
	}
	return d
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, &apiError{status: http.StatusMethodNotAllowed,
			code: "method_not_allowed", message: "POST a SweepRequest JSON body"})
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.planErrors.Add(1)
		writeError(w, badRequest("bad request: %v", err))
		return
	}
	if len(req.Points) == 0 {
		s.planErrors.Add(1)
		writeError(w, badRequest("sweep needs at least one point"))
		return
	}
	if len(req.Points) > maxSweepPoints {
		s.planErrors.Add(1)
		writeError(w, badRequest("sweep has %d points, max %d", len(req.Points), maxSweepPoints))
		return
	}

	deadline := s.defaultTimeout
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	} else if req.TimeoutMS > 0 {
		deadline = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if deadline > s.maxTimeout {
		deadline = s.maxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	ctx = context.WithValue(ctx, priorityCtxKey{}, req.Priority)

	resp, aerr := s.sweep(ctx, &req)
	if aerr != nil {
		s.planErrors.Add(1)
		writeError(w, aerr)
		return
	}
	s.sweeps.Add(1)
	s.sweepPointsPlanned.Add(int64(resp.Planned))
	s.sweepPointsFailed.Add(int64(resp.Failed))
	s.crossNodeHits.Add(resp.Totals.CrossCallNodeHits)
	s.crossEdgeHits.Add(resp.Totals.CrossCallEdgeHits)
	s.crossTableHits.Add(resp.Totals.CrossCallTableHits)
	s.candsTotal.Add(resp.Totals.CandsTotal)
	s.candsPruned.Add(resp.Totals.CandsPruned)
	s.entriesScanned.Add(resp.Totals.EntriesScanned)
	s.entriesBoundSkipped.Add(resp.Totals.EntriesBoundSkipped)
	s.edgeCellsReused.Add(resp.Totals.EdgeCellsReused)
	writeJSON(w, http.StatusOK, resp)
}

// sweep resolves every point against the base request, admits the whole
// portfolio as one unit, and plans the points sequentially over the shared
// cache.
func (s *server) sweep(ctx context.Context, req *SweepRequest) (*SweepResponse, *apiError) {
	// The base must itself resolve — model, devices, defaults — so every
	// point inherits a validated starting request and a normalized baseline
	// for delta_dims.
	base, aerr := s.preparePlan(&req.PlanRequest)
	if aerr != nil {
		return nil, aerr
	}

	start := time.Now()
	resp := &SweepResponse{Model: base.cfg.Name, Results: make([]SweepPointResult, len(req.Points))}
	jobs := make([]*planJob, len(req.Points))
	var totalWork float64
	allWarm := true
	for i, p := range req.Points {
		resp.Results[i].Point = p
		pr := req.PlanRequest
		if p.Devices > 0 {
			pr.Devices = p.Devices
		}
		if p.DevicesPerNode > 0 {
			pr.DevicesPerNode = p.DevicesPerNode
		}
		if p.Profile != "" {
			pr.Profile = p.Profile
		}
		if p.Alpha != nil {
			pr.Alpha = p.Alpha
		}
		if p.Layers > 0 {
			pr.Layers = p.Layers
		}
		if p.Batch > 0 {
			pr.Batch = p.Batch
		}
		if p.Pipeline != nil {
			pr.Pipeline = p.Pipeline
		}
		job, aerr := s.preparePlan(&pr)
		if aerr != nil {
			// A bad point sheds the point, not the sweep.
			resp.Results[i].Error = envelopeOf(aerr)
			resp.Failed++
			continue
		}
		resp.Results[i].DeltaDims = deltaDims(&base.req, &job.req)
		jobs[i] = job
		if !job.est.Warm {
			allWarm = false
		}
		totalWork += job.est.Work
	}

	// One admission slot covers the whole portfolio (admission.go header).
	release, aerr := s.adm.admit(ctx, allWarm, s.adm.pred.predict(totalWork), ctxDeadline(ctx))
	if aerr != nil {
		return nil, aerr
	}
	if release == nil {
		return nil, s.asAPIError(ctx.Err())
	}
	defer release()

	for i, job := range jobs {
		if job == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, s.asAPIError(err) // the whole sweep dies with its context
		}
		// Re-estimate: earlier points warmed the cache, so the prepare-time
		// estimate overstates what THIS point still has to do. The fresh
		// estimate keeps the predictor's teaching signal honest and the
		// deadline re-check tight.
		est, err := job.estimate()
		if err != nil {
			resp.Results[i].Error = envelopeOf(s.asAPIError(err))
			resp.Failed++
			continue
		}
		if aerr := s.adm.unmeetable(s.adm.pred.predict(est.Work), ctxDeadline(ctx)); aerr != nil {
			resp.Results[i].Error = envelopeOf(aerr)
			resp.Failed++
			continue
		}
		plan, err := s.search(ctx, job, est)
		if err != nil {
			if isCancellation(err) {
				return nil, s.asAPIError(err)
			}
			resp.Results[i].Error = envelopeOf(s.asAPIError(err))
			resp.Failed++
			continue
		}
		resp.Results[i].Plan = plan
		resp.Planned++
		resp.Totals.add(plan.Stats)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}
