// The optional `pipeline` object of /v1/plan (and the per-point override of
// /v1/plan/sweep): joint spatial-temporal 3D planning on the wire. A request
// carrying `pipeline` runs (*pipeline.Optimizer).Plan3D over the server's
// shared SearchCache instead of the plain tensor-parallel search; the
// response grows a `pipeline` section with the chosen (p,d,m), the stage
// boundaries, per-stage strategies, and the 1F1B schedule breakdown. Digest
// and the top-level search stats come from the joint plan, so the smoke's
// digest diff and the /v1/stats counters keep working unchanged.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/pipeline"
)

// StagesSpec is the `pipeline.stages` wire value: a fixed pipeline depth
// (JSON number, power of two ≥ 2) or the string "auto" to let the joint
// planner search depths. Omitted means "auto".
type StagesSpec struct {
	Auto bool
	N    int
}

func (s *StagesSpec) UnmarshalJSON(b []byte) error {
	b = bytes.TrimSpace(b)
	if len(b) > 0 && b[0] == '"' {
		var str string
		if err := json.Unmarshal(b, &str); err != nil {
			return err
		}
		if str != "auto" {
			return fmt.Errorf(`pipeline.stages must be an integer or "auto", got %q`, str)
		}
		*s = StagesSpec{Auto: true}
		return nil
	}
	n, err := strconv.Atoi(string(b))
	if err != nil {
		return fmt.Errorf(`pipeline.stages must be an integer or "auto"`)
	}
	*s = StagesSpec{N: n}
	return nil
}

func (s StagesSpec) MarshalJSON() ([]byte, error) {
	if s.Auto || s.N == 0 {
		return []byte(`"auto"`), nil
	}
	return []byte(strconv.Itoa(s.N)), nil
}

func (s StagesSpec) String() string {
	if s.Auto || s.N == 0 {
		return "auto"
	}
	return strconv.Itoa(s.N)
}

// PipelineSpec is the `pipeline` request object. Its presence switches the
// plan to the joint spatial-temporal search.
type PipelineSpec struct {
	// Stages pins the pipeline depth p or searches all feasible powers of
	// two ≥ 2 with "auto" (the default when omitted).
	Stages StagesSpec `json:"stages,omitempty"`
	// MicroBatch and GlobalBatch fix the iteration's sequence counts.
	MicroBatch  int `json:"micro_batch"`
	GlobalBatch int `json:"global_batch"`
	// DataParallel pins d (0 searches).
	DataParallel int `json:"data_parallel,omitempty"`
	// System is "primepar" (default) or "megatron".
	System string `json:"system,omitempty"`
}

// validate enforces the spec's own invariants; cluster-dependent feasibility
// (p·d·m = devices) is left to the planner's estimate.
func (ps *PipelineSpec) validate() *apiError {
	if ps.MicroBatch < 1 {
		return badRequest("pipeline.micro_batch must be ≥ 1, got %d", ps.MicroBatch)
	}
	if ps.GlobalBatch < 1 {
		return badRequest("pipeline.global_batch must be ≥ 1, got %d", ps.GlobalBatch)
	}
	if !ps.Stages.Auto && ps.Stages.N != 0 {
		if n := ps.Stages.N; n < 2 || n&(n-1) != 0 {
			return badRequest(`pipeline.stages must be a power of two ≥ 2 or "auto", got %d`, n)
		}
	}
	if d := ps.DataParallel; d != 0 && (d < 1 || d&(d-1) != 0) {
		return badRequest("pipeline.data_parallel must be a power of two, got %d", d)
	}
	if ps.GlobalBatch%ps.MicroBatch != 0 {
		return badRequest("pipeline.global_batch %d not divisible by micro_batch %d", ps.GlobalBatch, ps.MicroBatch)
	}
	if d := ps.DataParallel; d > 0 && ps.GlobalBatch%(d*ps.MicroBatch) != 0 {
		return badRequest("pipeline.global_batch %d not divisible across data_parallel %d × micro_batch %d", ps.GlobalBatch, d, ps.MicroBatch)
	}
	switch ps.System {
	case "", "primepar", "megatron":
	default:
		return badRequest(`pipeline.system must be "primepar" or "megatron", got %q`, ps.System)
	}
	return nil
}

func (ps *PipelineSpec) system() pipeline.System {
	if ps.System == "megatron" {
		return pipeline.Megatron
	}
	return pipeline.PrimePar
}

// key fingerprints a spec for singleflight and delta_dims (nil-safe: no
// pipeline object keys as the empty string).
func (ps *PipelineSpec) key() string {
	if ps == nil {
		return ""
	}
	return fmt.Sprintf("stages=%s,d=%d,mb=%d,gb=%d,sys=%s",
		ps.Stages, ps.DataParallel, ps.MicroBatch, ps.GlobalBatch, ps.system())
}

// PipelineStage is one stage of the joint plan on the wire.
type PipelineStage struct {
	// StartLayer and Layers delimit the stage's contiguous layer slice.
	StartLayer int `json:"start_layer"`
	Layers     int `json:"layers"`
	// StageTimeS is one micro-batch through the stage (fwd+bwd+grad).
	StageTimeS float64 `json:"stage_time_s"`
	// PeakMemoryBytes includes the stage's 1F1B activation stash.
	PeakMemoryBytes float64 `json:"peak_memory_bytes"`
	// Seqs is the stage's per-op partition sequence in the paper's 𝒫
	// notation, one entry per block op.
	Seqs []string `json:"seqs,omitempty"`
}

// PipelinePlan is the `pipeline` section of a PlanResponse: the request spec
// echoed back, the chosen configuration, the stage cut, and the schedule
// breakdown.
type PipelinePlan struct {
	Requested     PipelineSpec `json:"requested"`
	System        string       `json:"system"`
	Stages        int          `json:"stages"`
	DataParallel  int          `json:"data_parallel"`
	ModelParallel int          `json:"model_parallel"`
	MicroBatch    int          `json:"micro_batch"`
	GlobalBatch   int          `json:"global_batch"`
	Microbatches  int          `json:"microbatches"`
	// StageLayers is the chosen cut (uniform ⌈L/p⌉ or an uneven frontier
	// composition), in pipeline order.
	StageLayers []int           `json:"stage_layers"`
	StagePlans  []PipelineStage `json:"stage_plans"`
	IterationS  float64         `json:"iteration_s"`
	Throughput  float64         `json:"throughput_tokens_per_s"`
	// PeakMemoryBytes is the worst per-device memory over stages.
	PeakMemoryBytes float64                    `json:"peak_memory_bytes"`
	Breakdown       pipeline.ScheduleBreakdown `json:"breakdown"`
	Stats           pipeline.Plan3DStats       `json:"stats"`
}

// pipelinePlanOf shapes a joint plan for the wire. The graph supplies the
// axis names the partition sequences are rendered with (names do not depend
// on batch, so the core request's block graph serves for any micro-batch).
func pipelinePlanOf(spec PipelineSpec, p3 *pipeline.Plan3D, g *graph.Graph) *PipelinePlan {
	stages := make([]PipelineStage, len(p3.Stages))
	for i, st := range p3.Stages {
		ws := PipelineStage{
			StartLayer:      st.StartLayer,
			Layers:          st.Layers,
			StageTimeS:      st.StageTime,
			PeakMemoryBytes: st.PeakMemoryBytes,
		}
		if len(st.Seqs) == len(g.Nodes) {
			ws.Seqs = make([]string, len(st.Seqs))
			for j, seq := range st.Seqs {
				names := make([]string, len(g.Nodes[j].Axes))
				for k, ax := range g.Nodes[j].Axes {
					names[k] = ax.Name
				}
				ws.Seqs[j] = seq.Format(names)
			}
		}
		stages[i] = ws
	}
	return &PipelinePlan{
		Requested:       spec,
		System:          p3.System.String(),
		Stages:          p3.Config.P,
		DataParallel:    p3.Config.D,
		ModelParallel:   p3.Config.M,
		MicroBatch:      p3.Config.Microbatch,
		GlobalBatch:     p3.Config.GlobalBatch,
		Microbatches:    p3.Config.Microbatches(),
		StageLayers:     p3.StageLayers(),
		StagePlans:      stages,
		IterationS:      p3.IterationTime,
		Throughput:      p3.Throughput,
		PeakMemoryBytes: p3.PeakMemoryBytes,
		Breakdown:       p3.Breakdown,
		Stats:           p3.Stats,
	}
}
