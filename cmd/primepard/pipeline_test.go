package main

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPlanPipelineAuto is the joint-planning contract on the wire: a request
// with pipeline.stages="auto" answers with the chosen (p,d,m), a stage cut
// that covers the model, per-stage strategies, a schedule breakdown that sums
// to the iteration time, and a digest that is stable across identical
// requests.
func TestPlanPipelineAuto(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	req := PlanRequest{Model: "OPT-6.7B", Devices: 8,
		Pipeline: &PipelineSpec{Stages: StagesSpec{Auto: true}, MicroBatch: 2, GlobalBatch: 32}}
	cold := postPlan(t, ts, req)
	if cold.resp == nil {
		t.Fatalf("pipeline plan failed: %d %s", cold.status, cold.env.Message)
	}
	pp := cold.resp.Pipeline
	if pp == nil {
		t.Fatal("response has no pipeline section")
	}
	if pp.System != "PrimePar" || pp.MicroBatch != 2 || pp.GlobalBatch != 32 {
		t.Fatalf("echo mismatch: %+v", pp)
	}
	if pp.Stages*pp.DataParallel*pp.ModelParallel != 8 {
		t.Fatalf("p·d·m = %d·%d·%d ≠ 8", pp.Stages, pp.DataParallel, pp.ModelParallel)
	}
	if len(pp.StageLayers) != pp.Stages || len(pp.StagePlans) != pp.Stages {
		t.Fatalf("stage count mismatch: layers=%v plans=%d stages=%d",
			pp.StageLayers, len(pp.StagePlans), pp.Stages)
	}
	covered := 0
	for i, st := range pp.StagePlans {
		if st.Layers != pp.StageLayers[i] {
			t.Fatalf("stage %d layers %d ≠ stage_layers %d", i, st.Layers, pp.StageLayers[i])
		}
		if len(st.Seqs) == 0 {
			t.Fatalf("stage %d has no strategy seqs", i)
		}
		covered += st.Layers
	}
	if covered < 32 {
		t.Fatalf("stage cut covers %d of 32 layers", covered)
	}
	bd := pp.Breakdown
	sum := bd.Warmup + bd.Steady + bd.Drain + bd.AllReduce
	if math.Abs(sum-pp.IterationS) > 1e-9*pp.IterationS {
		t.Fatalf("breakdown %v does not sum to iteration %v", sum, pp.IterationS)
	}
	if pp.IterationS <= 0 || pp.Throughput <= 0 || pp.PeakMemoryBytes <= 0 {
		t.Fatalf("degenerate plan: %+v", pp)
	}
	if cold.resp.Digest == "" || len(cold.resp.Nodes) != 0 {
		t.Fatalf("pipeline response shape: digest=%q nodes=%d", cold.resp.Digest, len(cold.resp.Nodes))
	}
	if cold.resp.Stats.NodeEvals == 0 {
		t.Fatalf("cold joint plan reports no search work: %+v", cold.resp.Stats)
	}

	warm := postPlan(t, ts, req)
	if warm.resp == nil {
		t.Fatalf("warm pipeline plan failed: %d", warm.status)
	}
	if warm.resp.Digest != cold.resp.Digest {
		t.Fatalf("digest unstable across identical requests: %s vs %s",
			warm.resp.Digest, cold.resp.Digest)
	}
	if warm.resp.Pipeline.IterationS != pp.IterationS {
		t.Fatalf("iteration time unstable: %v vs %v", warm.resp.Pipeline.IterationS, pp.IterationS)
	}
	if warm.resp.Stats.NodeEvals != 0 {
		t.Fatalf("warm joint plan recomputed %d node evals", warm.resp.Stats.NodeEvals)
	}
}

// TestPlanPipelineFixedStages pins the depth and checks the echo round-trips
// the fixed spec (marshal of a fixed StagesSpec is the integer, "auto"
// otherwise).
func TestPlanPipelineFixedStages(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	out := postPlan(t, ts, PlanRequest{Model: "OPT-6.7B", Devices: 8,
		Pipeline: &PipelineSpec{Stages: StagesSpec{N: 4}, MicroBatch: 2, GlobalBatch: 32, System: "megatron"}})
	if out.resp == nil {
		t.Fatalf("fixed-stages plan failed: %d %s", out.status, out.env.Message)
	}
	pp := out.resp.Pipeline
	if pp.Stages != 4 || pp.System != "Megatron-LM" {
		t.Fatalf("fixed depth not honored: %+v", pp)
	}
	raw, err := json.Marshal(pp.Requested)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"stages":4`) {
		t.Fatalf("requested echo lost the fixed depth: %s", raw)
	}
}

// TestPlanPipelineValidation: every malformed spec answers 400 with the
// uniform bad_request envelope and a message naming the field.
func TestPlanPipelineValidation(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  PlanRequest
		want string
	}{
		{"non-power-of-two stages",
			PlanRequest{Model: "OPT-6.7B", Devices: 8,
				Pipeline: &PipelineSpec{Stages: StagesSpec{N: 3}, MicroBatch: 2, GlobalBatch: 32}},
			"power of two"},
		{"indivisible global batch",
			PlanRequest{Model: "OPT-6.7B", Devices: 8,
				Pipeline: &PipelineSpec{MicroBatch: 2, GlobalBatch: 33}},
			"not divisible"},
		{"indivisible across data_parallel",
			PlanRequest{Model: "OPT-6.7B", Devices: 8,
				Pipeline: &PipelineSpec{MicroBatch: 2, GlobalBatch: 4, DataParallel: 4}},
			"data_parallel"},
		{"missing micro_batch",
			PlanRequest{Model: "OPT-6.7B", Devices: 8,
				Pipeline: &PipelineSpec{GlobalBatch: 32}},
			"micro_batch"},
		{"unknown system",
			PlanRequest{Model: "OPT-6.7B", Devices: 8,
				Pipeline: &PipelineSpec{MicroBatch: 2, GlobalBatch: 32, System: "alpa"}},
			"pipeline.system"},
		{"budget with pipeline",
			PlanRequest{Model: "OPT-6.7B", Devices: 8, BudgetMS: 50,
				Pipeline: &PipelineSpec{MicroBatch: 2, GlobalBatch: 32}},
			"budget_ms"},
		{"depth exceeding devices",
			PlanRequest{Model: "OPT-6.7B", Devices: 8,
				Pipeline: &PipelineSpec{Stages: StagesSpec{N: 16}, MicroBatch: 2, GlobalBatch: 32}},
			"no feasible"},
	}
	for _, tc := range cases {
		out := postPlan(t, ts, tc.req)
		if out.status != 400 || out.env.Code != "bad_request" {
			t.Fatalf("%s: got status %d code %q", tc.name, out.status, out.env.Code)
		}
		if !strings.Contains(out.env.Message, tc.want) {
			t.Fatalf("%s: message %q missing %q", tc.name, out.env.Message, tc.want)
		}
	}

	// stages must decode from "auto" or an integer, nothing else.
	var spec StagesSpec
	var err error
	if err = json.Unmarshal([]byte(`"all"`), &spec); err == nil {
		t.Fatal("StagesSpec accepted a bogus string")
	}
	if err = json.Unmarshal([]byte(`"auto"`), &spec); err != nil || !spec.Auto {
		t.Fatalf("StagesSpec rejected auto: %v %+v", err, spec)
	}
	if err = json.Unmarshal([]byte(`8`), &spec); err != nil || spec.N != 8 {
		t.Fatalf("StagesSpec rejected an integer: %v %+v", err, spec)
	}
}

// TestSweepPipelineOverride: a sweep point may switch to (or re-shape) the
// joint planner; the point's delta_dims names the pipeline dimension and its
// result carries the pipeline section.
func TestSweepPipelineOverride(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	sweep := SweepRequest{
		PlanRequest: PlanRequest{Model: "OPT-6.7B", Devices: 8},
		Points: []SweepPoint{
			{},
			{Pipeline: &PipelineSpec{Stages: StagesSpec{Auto: true}, MicroBatch: 2, GlobalBatch: 32}},
		},
	}
	out := postSweep(t, ts, sweep)
	if out.status != 200 {
		t.Fatalf("sweep failed: %d %s", out.status, out.env.Message)
	}
	resp := out.resp
	if resp.Planned != 2 || resp.Failed != 0 {
		t.Fatalf("planned=%d failed=%d", resp.Planned, resp.Failed)
	}
	if resp.Results[0].Plan.Pipeline != nil {
		t.Fatal("base point must stay a plain plan")
	}
	if len(resp.Results[0].DeltaDims) != 0 {
		t.Fatalf("base point delta_dims = %v", resp.Results[0].DeltaDims)
	}
	pt := resp.Results[1]
	if pt.Plan == nil || pt.Plan.Pipeline == nil {
		t.Fatal("override point has no pipeline plan")
	}
	found := false
	for _, d := range pt.DeltaDims {
		if d == "pipeline" {
			found = true
		}
	}
	if !found {
		t.Fatalf("delta_dims %v missing \"pipeline\"", pt.DeltaDims)
	}
	if pt.Plan.Pipeline.Stages*pt.Plan.Pipeline.DataParallel*pt.Plan.Pipeline.ModelParallel != 8 {
		t.Fatalf("override plan configuration: %+v", pt.Plan.Pipeline)
	}
}
