package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fptr builds the presence-carrying α pointer requests use on the wire.
func fptr(v float64) *float64 { return &v }

// sweepOutcome is one /v1/plan/sweep exchange.
type sweepOutcome struct {
	resp   *SweepResponse
	status int
	env    errorEnvelope
}

func postSweep(t *testing.T, ts *httptest.Server, req SweepRequest) sweepOutcome {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(ts.URL+"/v1/plan/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	out := sweepOutcome{status: httpResp.StatusCode}
	if httpResp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&out.env); err != nil {
			t.Fatalf("non-200 body is not an error envelope: %v", err)
		}
		return out
	}
	out.resp = &SweepResponse{}
	if err := json.NewDecoder(httpResp.Body).Decode(out.resp); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSweepValidation covers the 4xx paths and envelope conformance of the
// sweep endpoint, mirroring TestPlanValidation.
func TestSweepValidation(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	manyPoints := `{"model":"OPT-6.7B","devices":4,"points":[` +
		strings.Repeat(`{"devices":4},`, maxSweepPoints) + `{"devices":8}]}`
	cases := []struct {
		name   string
		method string
		body   string
		want   int
		code   string
	}{
		{"wrong method", http.MethodGet, "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad json", http.MethodPost, "{", http.StatusBadRequest, "bad_request"},
		{"unknown field", http.MethodPost, `{"model":"OPT-6.7B","devices":4,"warp":9,"points":[{}]}`, http.StatusBadRequest, "bad_request"},
		{"no points", http.MethodPost, `{"model":"OPT-6.7B","devices":4}`, http.StatusBadRequest, "bad_request"},
		{"empty points", http.MethodPost, `{"model":"OPT-6.7B","devices":4,"points":[]}`, http.StatusBadRequest, "bad_request"},
		{"too many points", http.MethodPost, manyPoints, http.StatusBadRequest, "bad_request"},
		{"unknown model", http.MethodPost, `{"model":"GPT-9","devices":4,"points":[{}]}`, http.StatusBadRequest, "bad_request"},
		{"bad base devices", http.MethodPost, `{"model":"OPT-6.7B","devices":3,"points":[{}]}`, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+"/v1/plan/sweep", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env errorEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
		if env.Code != c.code || env.Message == "" || env.Error != env.Message {
			t.Errorf("%s: malformed envelope %+v", c.name, env)
		}
	}
}

// TestSweepSharesAcrossPoints is the portfolio contract end to end: a sweep
// over (base, α shift, layer change) plans every point, reports the delta
// dimensions, provably shares work between points (the α point re-evaluates
// no nodes; the layer point rebuilds no tables), and every point's digest is
// byte-identical to an individually cold-planned /v1/plan of the same
// request on a fresh server.
func TestSweepSharesAcrossPoints(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	base := PlanRequest{Model: "OPT-6.7B", Devices: 4, Layers: 2}
	out := postSweep(t, ts, SweepRequest{
		PlanRequest: base,
		Points:      []SweepPoint{{}, {Alpha: fptr(1e-10)}, {Layers: 4}},
	})
	if out.resp == nil {
		t.Fatalf("sweep failed: %d %s", out.status, out.env.Message)
	}
	if out.resp.Planned != 3 || out.resp.Failed != 0 {
		t.Fatalf("planned %d / failed %d, want 3/0", out.resp.Planned, out.resp.Failed)
	}

	r := out.resp.Results
	if len(r[0].DeltaDims) != 0 {
		t.Errorf("base point delta_dims = %v, want none", r[0].DeltaDims)
	}
	if len(r[1].DeltaDims) != 1 || r[1].DeltaDims[0] != "alpha" {
		t.Errorf("α point delta_dims = %v, want [alpha]", r[1].DeltaDims)
	}
	if len(r[2].DeltaDims) != 1 || r[2].DeltaDims[0] != "layers" {
		t.Errorf("layer point delta_dims = %v, want [layers]", r[2].DeltaDims)
	}

	if r[0].Plan.Stats.NodeEvals == 0 {
		t.Fatalf("base point did no node work: %+v", r[0].Plan.Stats)
	}
	// The α point reuses every node and edge entry; only the DP re-runs.
	if st := r[1].Plan.Stats; st.NodeEvals != 0 || st.CrossCallNodeHits == 0 ||
		st.CrossCallTableHits != 0 || st.SegTablesBuilt == 0 {
		t.Errorf("α point frontier wrong: %+v", st)
	}
	// The layer point reuses every tier including whole segment tables.
	if st := r[2].Plan.Stats; st.NodeEvals != 0 || st.SegTablesBuilt != 0 ||
		st.CrossCallTableHits == 0 {
		t.Errorf("layer point frontier wrong: %+v", st)
	}
	if out.resp.Totals.NodeEvals != int64(r[0].Plan.Stats.NodeEvals) {
		t.Errorf("totals node_evals = %d, want only the base point's %d",
			out.resp.Totals.NodeEvals, r[0].Plan.Stats.NodeEvals)
	}

	// Digest parity: each point individually cold-planned on a FRESH server
	// must produce the same digest and costs the sweep reported.
	cold := newTestServer(t, "", noAdmission)
	tsCold := httptest.NewServer(cold.handler())
	defer tsCold.Close()
	individual := []PlanRequest{
		base,
		{Model: base.Model, Devices: base.Devices, Layers: 2, Alpha: fptr(1e-10)},
		{Model: base.Model, Devices: base.Devices, Layers: 4},
	}
	for i, req := range individual {
		got := postPlan(t, tsCold, req)
		if got.resp == nil {
			t.Fatalf("individual plan %d failed: %d", i, got.status)
		}
		if got.resp.Digest != r[i].Plan.Digest {
			t.Errorf("point %d digest %s, individual cold plan %s", i, r[i].Plan.Digest, got.resp.Digest)
		}
		if got.resp.TotalCost != r[i].Plan.TotalCost {
			t.Errorf("point %d total %v, individual %v", i, r[i].Plan.TotalCost, got.resp.TotalCost)
		}
	}

	// A repeat of the whole sweep is served entirely from cache.
	again := postSweep(t, ts, SweepRequest{
		PlanRequest: base,
		Points:      []SweepPoint{{}, {Alpha: fptr(1e-10)}, {Layers: 4}},
	})
	if again.resp == nil {
		t.Fatalf("repeat sweep failed: %d", again.status)
	}
	tot := again.resp.Totals
	if tot.NodeEvals != 0 || tot.EdgeMatsBuilt != 0 || tot.SegTablesBuilt != 0 {
		t.Errorf("repeat sweep did work: %+v", tot)
	}
	if tot.CrossCallTableHits == 0 {
		t.Errorf("repeat sweep missed the table tier: %+v", tot)
	}
	for i := range again.resp.Results {
		if again.resp.Results[i].Plan.Digest != r[i].Plan.Digest {
			t.Errorf("repeat sweep point %d digest diverged", i)
		}
	}

	st := getStats(t, ts)
	if st.SweepsServed != 2 || st.SweepPointsPlanned != 6 || st.SweepPointsFailed != 0 {
		t.Errorf("sweep counters wrong: %+v", st)
	}
	if st.CacheTables == 0 || st.CrossCallTableHits == 0 {
		t.Errorf("table tier invisible in stats: tables=%d hits=%d", st.CacheTables, st.CrossCallTableHits)
	}
	// Sweeps must not inflate the /v1/plan counter.
	if st.PlansServed != 0 {
		t.Errorf("plans_served = %d after sweeps only, want 0", st.PlansServed)
	}
}

// TestSweepPartialFailure: one bad point sheds that point with the uniform
// envelope in its result slot; the rest of the sweep still plans.
func TestSweepPartialFailure(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	out := postSweep(t, ts, SweepRequest{
		PlanRequest: PlanRequest{Model: "OPT-6.7B", Devices: 4, Layers: 1},
		Points:      []SweepPoint{{Devices: 3}, {}, {Devices: 6}},
	})
	if out.resp == nil {
		t.Fatalf("sweep failed outright: %d %s", out.status, out.env.Message)
	}
	if out.resp.Planned != 1 || out.resp.Failed != 2 {
		t.Fatalf("planned %d / failed %d, want 1/2", out.resp.Planned, out.resp.Failed)
	}
	r := out.resp.Results
	if r[0].Error == nil || r[0].Error.Code != "bad_request" || r[0].Plan != nil {
		t.Errorf("bad-devices point: %+v", r[0])
	}
	if r[0].Error != nil && r[0].Error.Error != r[0].Error.Message {
		t.Errorf("point envelope legacy field mismatch: %+v", r[0].Error)
	}
	if r[1].Plan == nil || r[1].Error != nil {
		t.Errorf("good point did not plan: %+v", r[1])
	}
	if r[2].Error == nil || r[2].Error.Code != "bad_request" {
		t.Errorf("bad-devices point: %+v", r[2])
	}

	st := getStats(t, ts)
	if st.SweepPointsPlanned != 1 || st.SweepPointsFailed != 2 {
		t.Errorf("partial-failure counters wrong: %+v", st)
	}
}

// TestSweepOneAdmissionSlot: a whole portfolio consumes exactly ONE
// admission slot. With MaxConcurrent=1/MaxQueue=0 and the slot held, a cold
// sweep sheds with queue_full; with the slot free, a 3-point sweep admits
// once and plans all points.
func TestSweepOneAdmissionSlot(t *testing.T) {
	s := newTestServer(t, "", admissionConfig{MaxConcurrent: 1, MaxQueue: 0, QueueTimeout: time.Second})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Hold the only slot.
	release, aerr := s.adm.admit(context.Background(), false, 0, time.Time{})
	if aerr != nil || release == nil {
		t.Fatalf("manual admit failed: %+v", aerr)
	}

	req := SweepRequest{
		PlanRequest: PlanRequest{Model: "OPT-6.7B", Devices: 4, Layers: 1},
		Points:      []SweepPoint{{}, {Alpha: fptr(1e-10)}, {Layers: 2}},
	}
	shed := postSweep(t, ts, req)
	if shed.status != http.StatusServiceUnavailable || shed.env.Code != "queue_full" {
		t.Fatalf("sweep with slot held: %d %s, want 503 queue_full", shed.status, shed.env.Code)
	}
	if !shed.env.Retryable {
		t.Error("queue_full shed must be retryable")
	}

	release()
	ok := postSweep(t, ts, req)
	if ok.resp == nil {
		t.Fatalf("sweep after release failed: %d %s", ok.status, ok.env.Message)
	}
	if ok.resp.Planned != 3 {
		t.Fatalf("planned %d, want 3", ok.resp.Planned)
	}
	// Two admissions total: the manual hold and the ONE slot for 3 points.
	if got := s.adm.admitted.Load(); got != 2 {
		t.Errorf("admitted = %d, want 2 (one manual + one for the whole sweep)", got)
	}
	if shedQF := s.adm.shedQueueFull.Load(); shedQF != 1 {
		t.Errorf("shed_queue_full = %d, want 1", shedQF)
	}
}

// TestSweepCancellation drives s.sweep directly: an already-cancelled
// context fails the WHOLE sweep with the client_closed mapping, and an
// expired deadline maps to deadline_exceeded.
func TestSweepCancellation(t *testing.T) {
	s := newTestServer(t, "", noAdmission)
	req := SweepRequest{
		PlanRequest: PlanRequest{Model: "OPT-6.7B", Devices: 4, Layers: 1},
		Points:      []SweepPoint{{}, {Alpha: fptr(1e-10)}},
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, aerr := s.sweep(ctx, &req)
	if aerr == nil || aerr.status != 499 || aerr.code != "client_closed" {
		t.Fatalf("cancelled sweep: %+v, want 499 client_closed", aerr)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, aerr = s.sweep(dctx, &req)
	if aerr == nil || aerr.status != http.StatusGatewayTimeout || aerr.code != "deadline_exceeded" {
		t.Fatalf("expired sweep: %+v, want 504 deadline_exceeded", aerr)
	}

	// The server still serves a normal sweep afterwards.
	resp, aerr := s.sweep(context.Background(), &req)
	if aerr != nil || resp == nil || resp.Planned != 2 {
		t.Fatalf("sweep after cancellation: %+v %+v", resp, aerr)
	}
}
