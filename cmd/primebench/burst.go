// Closed-loop burst mode (-burst, with -serve-addr): the admission-control
// demo from DESIGN.md §5.5. N concurrent clients each fire cold /v1/plan
// requests (every request a distinct micro-batch, so none share cache entries
// or a singleflight key) at a daemon whose -max-concurrent/-max-queue are
// deliberately small. A well-behaved daemon admits what fits, queues a
// bounded tail, and sheds the rest IMMEDIATELY with 503 + Retry-After —
// while a warm-cache probe running throughout the burst keeps being served
// with zero node/edge work. The run fails (nonzero exit) on any protocol
// violation: a shed without Retry-After or a known code, a warm probe or
// warm repeat that recomputed, or an admitted digest that is not stable on
// repeat.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// burstOutcome is one cold request's fate.
type burstOutcome struct {
	req    planRequest
	status int
	resp   *planResponse
	env    errorEnvelope
	header http.Header
	err    error
}

// shedCodes are the daemon's documented admission-shedding codes.
var shedCodes = map[string]bool{
	"queue_full":          true,
	"queue_timeout":       true,
	"deadline_unmeetable": true,
	"memory_pressure":     true,
}

// admissionCounters mirrors the admission section of /v1/stats.
type admissionCounters struct {
	Running          int   `json:"running"`
	QueueDepth       int   `json:"queue_depth"`
	Queued           int64 `json:"queued"`
	Admitted         int64 `json:"admitted"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout"`
	ShedDeadline     int64 `json:"shed_deadline"`
	ShedMemory       int64 `json:"shed_memory"`
}

func (c admissionCounters) shedTotal() int64 {
	return c.ShedQueueFull + c.ShedQueueTimeout + c.ShedDeadline + c.ShedMemory
}

// runBurst drives the burst and verifies the daemon's admission contract.
func runBurst(addr string, clients, iters int) error {
	addr = normalizeAddr(addr)
	client := httpClient
	total := clients * iters

	// Prewarm the probe request so warm latency is measurable during the
	// burst; it uses the model's default batch, which no burst request does.
	probe := planRequest{Model: "OPT-6.7B", Devices: 8}
	if _, err := postPlan(client, addr, probe); err != nil {
		return fmt.Errorf("burst prewarm: %w", err)
	}

	// The warm prober hammers the prewarmed request for the whole burst;
	// admission must keep serving it (warm requests bypass the gate).
	proberStop := make(chan struct{})
	var proberWG sync.WaitGroup
	var proberMu sync.Mutex
	var warmLatencies []time.Duration
	var proberViolations []string
	proberWG.Add(1)
	go func() {
		defer proberWG.Done()
		for {
			select {
			case <-proberStop:
				return
			default:
			}
			start := time.Now()
			resp, err := postPlan(client, addr, probe)
			rtt := time.Since(start)
			proberMu.Lock()
			switch {
			case err != nil:
				proberViolations = append(proberViolations,
					fmt.Sprintf("warm probe failed during burst: %v", err))
			case resp.Stats.NodeEvals != 0 || resp.Stats.EdgeMatsBuilt != 0:
				proberViolations = append(proberViolations,
					fmt.Sprintf("warm probe recomputed: %d node evals, %d edge builds",
						resp.Stats.NodeEvals, resp.Stats.EdgeMatsBuilt))
			default:
				warmLatencies = append(warmLatencies, rtt)
			}
			proberMu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Closed loop: `clients` workers drain `total` distinct cold requests.
	// Distinct micro-batches give every request its own search (node
	// signatures fold the batch axis), so the burst is honestly cold.
	outcomes := make([]burstOutcome, total)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				req := planRequest{Model: "OPT-6.7B", Devices: 8, Batch: 8 + i}
				out := burstOutcome{req: req}
				out.status, out.header, out.resp, out.env, out.err = exchange(client, addr, req)
				outcomes[i] = out
			}
		}()
	}
	burstStart := time.Now()
	for i := 0; i < total; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	burstElapsed := time.Since(burstStart)
	close(proberStop)
	proberWG.Wait()

	// Classify and verify the shed contract.
	var violations []string
	admitted, shed := 0, 0
	shedBy := map[string]int{}
	for _, out := range outcomes {
		switch {
		case out.err != nil:
			violations = append(violations, fmt.Sprintf("batch %d: %v", out.req.Batch, out.err))
		case out.status == http.StatusOK:
			admitted++
		case out.status == http.StatusServiceUnavailable:
			shed++
			shedBy[out.env.Code]++
			if !shedCodes[out.env.Code] {
				violations = append(violations,
					fmt.Sprintf("batch %d: shed with unknown code %q", out.req.Batch, out.env.Code))
			}
			if !out.env.Retryable || out.env.RetryAfterMS <= 0 || out.header.Get("Retry-After") == "" {
				violations = append(violations,
					fmt.Sprintf("batch %d: shed without a usable Retry-After (%+v)", out.req.Batch, out.env))
			}
		default:
			violations = append(violations,
				fmt.Sprintf("batch %d: unexpected status %d (%s)", out.req.Batch, out.status, out.env.Message))
		}
	}

	// Warm repeats: every admitted request, asked again, must be served from
	// the shared cache with zero work and an identical digest.
	warmRepeats, warmZero := 0, 0
	for _, out := range outcomes {
		if out.status != http.StatusOK || out.resp == nil {
			continue
		}
		warmRepeats++
		rep, err := postPlan(client, addr, out.req)
		switch {
		case err != nil:
			violations = append(violations,
				fmt.Sprintf("batch %d: warm repeat failed: %v", out.req.Batch, err))
		case rep.Stats.NodeEvals != 0 || rep.Stats.EdgeMatsBuilt != 0:
			violations = append(violations,
				fmt.Sprintf("batch %d: warm repeat recomputed: %+v", out.req.Batch, rep.Stats))
		case rep.Digest != out.resp.Digest:
			violations = append(violations,
				fmt.Sprintf("batch %d: digest changed on repeat: %s vs %s",
					out.req.Batch, out.resp.Digest, rep.Digest))
		default:
			warmZero++
		}
	}

	counters, err := fetchAdmissionCounters(client, addr)
	if err != nil {
		violations = append(violations, fmt.Sprintf("stats fetch: %v", err))
	}

	// Report.
	fmt.Printf("Burst: %d clients × %d cold /v1/plan requests against %s (%.2fs)\n",
		clients, iters, addr, burstElapsed.Seconds())
	fmt.Printf("  admitted %d, shed %d", admitted, shed)
	for code, n := range shedBy {
		fmt.Printf("  %s=%d", code, n)
	}
	fmt.Println()
	proberMu.Lock()
	if len(warmLatencies) > 0 {
		fmt.Printf("  warm probe during burst: %d probes, p50 %.1fms, p95 %.1fms, all zero-work\n",
			len(warmLatencies),
			quantile(warmLatencies, 0.50).Seconds()*1000,
			quantile(warmLatencies, 0.95).Seconds()*1000)
	}
	violations = append(violations, proberViolations...)
	proberMu.Unlock()
	fmt.Printf("  warm repeats of admitted requests: %d/%d zero-work with stable digests\n",
		warmZero, warmRepeats)
	if err == nil {
		fmt.Printf("  daemon counters: admitted=%d queued=%d shed_queue_full=%d shed_queue_timeout=%d shed_deadline=%d shed_memory=%d queue_depth=%d\n",
			counters.Admitted, counters.Queued, counters.ShedQueueFull, counters.ShedQueueTimeout,
			counters.ShedDeadline, counters.ShedMemory, counters.QueueDepth)
		if shed > 0 && counters.shedTotal() == 0 {
			violations = append(violations, "clients saw sheds but the daemon's shed_* counters are zero")
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
		return fmt.Errorf("burst found %d admission-contract violations", len(violations))
	}
	if admitted == 0 {
		return fmt.Errorf("burst admitted nothing — the gate is over-shedding")
	}
	fmt.Println("  admission contract held")
	return nil
}

// exchange performs one cold burst request, decoding either side of the
// response.
func exchange(client *http.Client, addr string, req planRequest) (int, http.Header, *planResponse, errorEnvelope, error) {
	status, header, data, err := postPlanRaw(client, addr, req)
	if err != nil {
		return 0, nil, nil, errorEnvelope{}, err
	}
	if status != http.StatusOK {
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			return status, header, nil, env, fmt.Errorf("non-200 body is not an error envelope: %w", err)
		}
		return status, header, nil, env, nil
	}
	var resp planResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return status, header, nil, errorEnvelope{}, fmt.Errorf("bad /v1/plan response: %w", err)
	}
	return status, header, &resp, errorEnvelope{}, nil
}

func fetchAdmissionCounters(client *http.Client, addr string) (admissionCounters, error) {
	var payload struct {
		Admission admissionCounters `json:"admission"`
	}
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return admissionCounters{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return admissionCounters{}, err
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return admissionCounters{}, err
	}
	return payload.Admission, nil
}

func quantile(ds []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
