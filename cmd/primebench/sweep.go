// Portfolio sweep mode (-sweep, with -serve-addr): the end-to-end check of
// the daemon's /v1/plan/sweep contract. The run plans every device count of a
// scale curve individually first — measuring what the points honestly cost as
// independent /v1/plan requests — then re-plans the same curve as ONE sweep
// and verifies the portfolio promise: every point's digest byte-identical to
// its individually planned counterpart, and the sweep's total DP work
// strictly below what the independent plans paid (the shared SearchCache is
// doing its job). Any violation exits nonzero, so CI can pin the contract by
// just running this mode against a fresh daemon.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Wire mirrors of the daemon's sweep types (cmd/primepard/sweep.go); like
// planRequest/planResponse, only the consumed fields are declared.
type sweepPoint struct {
	Devices int `json:"devices,omitempty"`
}

type sweepRequest struct {
	planRequest
	Points []sweepPoint `json:"points"`
}

type sweepPointResult struct {
	Point     sweepPoint     `json:"point"`
	DeltaDims []string       `json:"delta_dims"`
	Plan      *planResponse  `json:"plan"`
	Error     *errorEnvelope `json:"error"`
}

type sweepTotals struct {
	NodeEvals           int64 `json:"node_evals"`
	EdgeMatsBuilt       int64 `json:"edge_mats_built"`
	SegTablesBuilt      int64 `json:"seg_tables_built"`
	CrossCallNodeHits   int64 `json:"cross_call_node_hits"`
	CrossCallEdgeHits   int64 `json:"cross_call_edge_hits"`
	CrossCallTableHits  int64 `json:"cross_call_table_hits"`
	EntriesScanned      int64 `json:"entries_scanned"`
	EntriesBoundSkipped int64 `json:"entries_bound_skipped"`
	EdgeCellsReused     int64 `json:"edge_cells_reused"`
	CandsTotal          int64 `json:"cands_total"`
	CandsPruned         int64 `json:"cands_pruned"`
}

type sweepResponse struct {
	Results   []sweepPointResult `json:"results"`
	Planned   int                `json:"planned"`
	Failed    int                `json:"failed"`
	Totals    sweepTotals        `json:"totals"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// parseSweepSpec turns "4,8,16,32" into device counts.
func parseSweepSpec(spec string) ([]int, error) {
	var points []int
	for _, f := range strings.Split(spec, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad -sweep point %q (want a positive device count)", f)
		}
		points = append(points, d)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("-sweep needs at least one device count")
	}
	return points, nil
}

// postSweep performs one /v1/plan/sweep exchange.
func postSweep(client *http.Client, addr string, req sweepRequest) (*sweepResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpResp, err := client.Post(addr+"/v1/plan/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e errorEnvelope
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			return nil, fmt.Errorf("server returned %d %s: %s", httpResp.StatusCode, e.Code, e.Message)
		}
		return nil, fmt.Errorf("server returned %d", httpResp.StatusCode)
	}
	var resp sweepResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("bad /v1/plan/sweep response: %w", err)
	}
	return &resp, nil
}

// runSweep drives the portfolio check against a daemon.
func runSweep(addr, modelName, spec string) error {
	addr = normalizeAddr(addr)
	points, err := parseSweepSpec(spec)
	if err != nil {
		return err
	}

	// Phase 1: each point as an independent /v1/plan. On a fresh daemon these
	// are the honest cold costs; on a warmed one they are already cheap and
	// the sweep below must then be entirely zero-work.
	fmt.Printf("Sweep check: %s at %v devices against %s\n", modelName, points, addr)
	individual := make([]*planResponse, len(points))
	var coldEvals, coldEdges, coldTables, coldScanned int64
	for i, d := range points {
		resp, err := postPlan(httpClient, addr, planRequest{Model: modelName, Devices: d})
		if err != nil {
			return fmt.Errorf("individual plan %s@%d: %w", modelName, d, err)
		}
		individual[i] = resp
		coldEvals += int64(resp.Stats.NodeEvals)
		coldEdges += int64(resp.Stats.EdgeMatsBuilt)
		coldTables += int64(resp.Stats.SegTablesBuilt)
		coldScanned += resp.Stats.EntriesScanned
		fmt.Printf("  plan  %2d devices: %8.1fms  node_evals=%-6d digest=%s\n",
			d, resp.ElapsedMS, resp.Stats.NodeEvals, resp.Digest[:12])
	}

	// Phase 2: the same curve as one portfolio.
	req := sweepRequest{planRequest: planRequest{Model: modelName, Devices: points[0]}}
	for _, d := range points {
		req.Points = append(req.Points, sweepPoint{Devices: d})
	}
	sw, err := postSweep(httpClient, addr, req)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}

	var violations []string
	if sw.Planned != len(points) || sw.Failed != 0 {
		violations = append(violations, fmt.Sprintf(
			"sweep planned %d / failed %d of %d points", sw.Planned, sw.Failed, len(points)))
	}
	for i, r := range sw.Results {
		if r.Plan == nil {
			msg := "no envelope"
			if r.Error != nil {
				msg = fmt.Sprintf("%s: %s", r.Error.Code, r.Error.Message)
			}
			violations = append(violations, fmt.Sprintf("point %d devices: %s", points[i], msg))
			continue
		}
		fmt.Printf("  sweep %2d devices: %8.1fms  node_evals=%-6d digest=%s\n",
			points[i], r.Plan.ElapsedMS, r.Plan.Stats.NodeEvals, r.Plan.Digest[:12])
		if r.Plan.Digest != individual[i].Digest {
			violations = append(violations, fmt.Sprintf(
				"point %d devices: sweep digest %s != individually planned %s",
				points[i], r.Plan.Digest, individual[i].Digest))
		}
	}

	// The work contract. Individuals did cold work → the sweep, sharing the
	// daemon's cache, must beat their total and prove it hit the cache.
	// Individuals were already warm → the sweep has nothing left to compute.
	coldWork := coldEvals + coldEdges + coldTables
	sweepWork := sw.Totals.NodeEvals + sw.Totals.EdgeMatsBuilt + sw.Totals.SegTablesBuilt
	fmt.Printf("  totals: individual work %d (evals+edges+tables), sweep work %d, sweep cache hits %d\n",
		coldWork, sweepWork,
		sw.Totals.CrossCallNodeHits+sw.Totals.CrossCallEdgeHits+sw.Totals.CrossCallTableHits)
	fmt.Printf("  scans:  individual entries_scanned %d, sweep entries_scanned %d, bound-skipped %d, edge cells reused %d\n",
		coldScanned, sw.Totals.EntriesScanned, sw.Totals.EntriesBoundSkipped, sw.Totals.EdgeCellsReused)
	if coldWork > 0 {
		if sweepWork >= coldWork {
			violations = append(violations, fmt.Sprintf(
				"sweep did %d units of DP work, not less than the %d the independent plans paid",
				sweepWork, coldWork))
		}
		if sw.Totals.CrossCallNodeHits == 0 {
			violations = append(violations, "sweep reports no cross-call node hits after cold individual plans")
		}
		// The same contract at min-plus granularity: the sweep's shared table
		// tier must leave it scanning strictly fewer entries than the
		// independent plans did in total.
		if coldScanned > 0 && sw.Totals.EntriesScanned >= coldScanned {
			violations = append(violations, fmt.Sprintf(
				"sweep scanned %d min-plus entries, not less than the %d the independent plans paid",
				sw.Totals.EntriesScanned, coldScanned))
		}
	} else if sweepWork != 0 {
		violations = append(violations, fmt.Sprintf(
			"individual plans were fully warm yet the sweep recomputed %d units", sweepWork))
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
		return fmt.Errorf("sweep check found %d violations", len(violations))
	}
	fmt.Println("  sweep contract held: digests byte-identical, portfolio work below independent plans")
	return nil
}
