// Command primebench regenerates the paper's evaluation artifacts — every
// figure and table of §6 — on the simulated cluster and prints them as text
// tables.
//
// Usage:
//
//	primebench                 # run everything (several minutes at 32 GPUs)
//	primebench -exp fig7       # one experiment
//	primebench -exp fig7 -quick
//	primebench -serve-addr localhost:7133 -exp table2   # sweep via a daemon
//	primebench -serve-addr localhost:7133 -burst 16     # admission burst demo
//	primebench -serve-addr localhost:7133 -sweep 4,8    # portfolio-vs-individual check
//	primebench -plan3d                                  # joint-vs-grid 3D planning curve
//	primebench -plan3d -check-golden golden/plan3d_digest.json
//
// Experiments: fig2a fig2b fig4 table1 fig7 fig8 fig9 fig10 table2 ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/model"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig2a, fig2b, fig4, table1, fig7, fig8, fig9, fig10, table2, ablations, sweeps, all)")
		quick      = flag.Bool("quick", false, "reduced sweep (2 models, scales 4–8) for smoke runs")
		benchOut   = flag.String("bench-out", "BENCH_table2.json", "where -exp table2 writes its JSON artifact")
		budget     = flag.Duration("budget", 0, "per-search wall-clock budget: beam widths autotune until the strategy stabilizes (0 = exact search)")
		goldenOut  = flag.String("write-golden", "", "with -exp table2 or -plan3d: write strategy digests to this file")
		goldenIn   = flag.String("check-golden", "", "with -exp table2 or -plan3d: fail if strategy digests diverge from this file")
		plan3dFlag = flag.Bool("plan3d", false, "joint spatial-temporal planning curve: the best uniform (p,d,m) grid point vs one joint Plan3D per model/scale — fails if joint is ever worse than grid; honors -write-golden/-check-golden with joint-plan digests")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		cacheDir   = flag.String("cache-dir", "", "persist the cross-call search cache in this directory: load it (if present and valid) before running, save it back after; stale or corrupt files fall back to a cold cache")
		reqWarm    = flag.Bool("require-warm", false, "with -exp table2: fail unless every search was served entirely from the cross-call cache (used by CI's warm-restart check)")
		serveAddr  = flag.String("serve-addr", "", "with -exp table2 or -burst: talk to a primepard daemon at this address instead of searching in-process")
		burst      = flag.Int("burst", 0, "with -serve-addr: closed-loop burst mode — this many concurrent clients fire cold /v1/plan requests and the run verifies the daemon's admission contract (sheds carry 503 + Retry-After, warm traffic stays zero-work)")
		burstIters = flag.Int("burst-iters", 1, "cold requests per burst client")
		sweepSpec  = flag.String("sweep", "", "with -serve-addr: comma-separated device counts (e.g. \"4,8,16,32\") — plan each individually, then as one /v1/plan/sweep portfolio, and fail unless every digest matches with less total search work")
		sweepModel = flag.String("sweep-model", "Llama2-7B", "model the -sweep check plans (pick one the daemon has not already cached so the individual plans are honestly cold)")
		profFlag   = flag.String("profile", "", "machine preset the experiments run on (v100-cluster, a100-cluster, tpuv4-torus, mixed-a100-v100, a100-superpod; empty = the paper's V100 testbed). With -serve-addr the profile is sent on every /v1/plan.")
		topoFlag   = flag.String("topology", "", "override the profile's interconnect shape (switch, torus-2d)")
		linksFlag  = flag.String("links", "", "custom link hierarchy, innermost first: name:width:bandwidth:latency,... (width in devices, \"rest\" on the last tier), e.g. nvlink:4:300e9:5e-6,fabric:rest:25e9:15e-6")
	)
	flag.Parse()

	if *burst > 0 {
		if *serveAddr == "" {
			fmt.Fprintln(os.Stderr, "primebench: -burst requires -serve-addr")
			os.Exit(2)
		}
		if *burstIters < 1 {
			fmt.Fprintln(os.Stderr, "primebench: -burst-iters must be ≥ 1")
			os.Exit(2)
		}
		check(runBurst(*serveAddr, *burst, *burstIters))
		return
	}
	if *sweepSpec != "" {
		if *serveAddr == "" {
			fmt.Fprintln(os.Stderr, "primebench: -sweep requires -serve-addr")
			os.Exit(2)
		}
		check(runSweep(*serveAddr, *sweepModel, *sweepSpec))
		return
	}
	if *serveAddr != "" && *exp != "table2" {
		fmt.Fprintln(os.Stderr, "primebench: -serve-addr requires -exp table2 (or -burst/-sweep)")
		os.Exit(2)
	}

	if *cacheDir != "" {
		if err := core.DefaultSearchCache.Load(*cacheDir); err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "primebench: cache load failed (%v), starting cold\n", err)
			}
		} else {
			n, e := core.DefaultSearchCache.Sizes()
			fmt.Printf("loaded search cache from %s (%d node entries, %d edge matrices)\n\n", *cacheDir, n, e)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC()
			check(pprof.Lookup("allocs").WriteTo(f, 0))
			check(f.Close())
		}()
	}

	setup := experiments.DefaultSetup()
	if *quick {
		setup = experiments.QuickSetup()
	}
	setup.SearchBudget = *budget
	if *profFlag != "" {
		prof, err := device.ProfileByName(*profFlag)
		check(err)
		setup.Profile = prof
	}
	if *topoFlag != "" {
		topo, err := device.ParseTopology(*topoFlag)
		check(err)
		if topo == device.Torus2D && setup.Profile.TorusBW <= 0 {
			check(fmt.Errorf("profile %q does not parameterize a torus link; use -profile tpuv4-torus or omit -topology", setup.Profile.Name))
		}
		setup.Profile.Topology = topo
	}
	if *linksFlag != "" {
		tiers, err := device.ParseLinksSpec(*linksFlag)
		check(err)
		setup.Profile.Links = tiers
		// Same suffix convention as the daemon: a custom hierarchy is a
		// distinct machine, and digests listings must say so.
		setup.Profile.Name += "+custom-links"
	}

	run := func(id string) bool { return *exp == "all" || *exp == id }
	start := time.Now()

	if *plan3dFlag {
		scales := []int{8, 16, 32}
		if *quick {
			scales = []int{8}
		}
		rows, table, err := experiments.Plan3DCurve(setup, scales, 64, 2)
		check(err)
		fmt.Println(table)
		if *goldenOut != "" {
			check(experiments.WriteGoldenPlan3D(*goldenOut, rows))
			fmt.Printf("wrote %s (golden joint-plan digests)\n\n", *goldenOut)
		}
		if *goldenIn != "" {
			check(experiments.CheckGoldenPlan3D(*goldenIn, rows))
			fmt.Printf("joint-plan digests match %s\n\n", *goldenIn)
		}
		fmt.Printf("primebench finished in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if run("fig2a") {
		_, table, err := experiments.Fig2a(setup)
		check(err)
		fmt.Println(table)
	}
	if run("fig2b") {
		_, table, err := experiments.Fig2b(setup)
		check(err)
		fmt.Println(table)
	}
	if run("fig4") {
		_, out, err := experiments.Fig4(setup)
		check(err)
		fmt.Println(out)
	}
	if run("table1") {
		out, err := experiments.Table1(setup)
		check(err)
		fmt.Println(out)
	}
	if run("fig7") || run("fig8") {
		data, err := experiments.RunThroughputSweep(setup)
		check(err)
		if run("fig7") {
			fmt.Println(data.Fig7Table())
			last := setup.Scales[len(setup.Scales)-1]
			fmt.Printf("Geo-mean PrimePar speedup over Megatron-LM at %d GPUs: %.2fx\n\n",
				last, data.GeoMeanSpeedup(last))
		}
		if run("fig8") {
			fmt.Println(data.Fig8Table())
		}
	}
	if run("fig9") {
		_, table, err := experiments.Fig9(setup)
		check(err)
		fmt.Println(table)
	}
	if run("fig10") {
		devices := 32
		if *quick {
			devices = 8
		}
		_, table, err := experiments.Fig10(setup, devices, 64, 2)
		check(err)
		fmt.Println(table)
	}
	if run("table2") {
		var (
			rows  []experiments.Table2Row
			table string
			err   error
		)
		if *serveAddr != "" {
			rows, table, err = remoteTable2(*serveAddr, setup)
		} else {
			rows, table, err = experiments.Table2(setup)
		}
		check(err)
		fmt.Println(table)
		var candsTotal, candsPruned int
		var scanned, boundSkipped, cellsReused int64
		for _, r := range rows {
			candsTotal += r.Stats.CandsTotal
			candsPruned += r.Stats.CandsPruned
			scanned += r.Stats.EntriesScanned
			boundSkipped += r.Stats.EntriesBoundSkipped
			cellsReused += r.Stats.EdgeCellsReused
		}
		fmt.Printf("dominance pre-filter: pruned %d of %d enumerated candidates\n",
			candsPruned, candsTotal)
		fmt.Printf("min-plus folds: scanned %d entries, bound-skipped %d, edge cells reused %d\n\n",
			scanned, boundSkipped, cellsReused)
		if *reqWarm {
			check(requireWarm(rows))
			fmt.Println("warm-restart check passed: every search served from the cross-call cache")
		}
		if *serveAddr == "" {
			// Remote timings measure the daemon, not this process; keep them
			// out of the local benchmark artifact.
			check(experiments.WriteTable2JSON(*benchOut, rows))
			fmt.Printf("wrote %s (search stats + before/after timings)\n\n", *benchOut)
		}
		if *goldenOut != "" {
			check(experiments.WriteGoldenDigests(*goldenOut, rows))
			fmt.Printf("wrote %s (golden strategy digests)\n\n", *goldenOut)
		}
		if *goldenIn != "" {
			check(experiments.CheckGoldenDigests(*goldenIn, rows))
			fmt.Printf("strategy digests match %s\n\n", *goldenIn)
		}
	}
	if run("ablations") {
		cfg := model.OPT175B()
		scale := 8

		_, _, t1, err := experiments.AblationNoOverlap(setup, cfg, scale)
		check(err)
		fmt.Println(t1)

		_, t2, err := experiments.AblationAlphaSweep(setup, cfg, scale, []float64{0, 1e-12, 1e-10, 1e-9})
		check(err)
		fmt.Println(t2)

		t3, err := experiments.AblationSpatialOnly(setup, cfg)
		check(err)
		fmt.Println(t3)

		t4, err := experiments.AblationSegmentedVsExhaustive(setup, model.OPT6B7())
		check(err)
		fmt.Println(t4)

		t5, err := experiments.AblationTopology(setup, cfg, scale)
		check(err)
		fmt.Println(t5)

		t6, err := experiments.AblationZeRO(setup, model.Llama2_70B(), scale)
		check(err)
		fmt.Println(t6)

		t7, err := experiments.DiscussionTorus(setup, cfg, 16)
		check(err)
		fmt.Println(t7)

		_, t8, err := experiments.FullModel(setup, model.OPT6B7(), scale)
		check(err)
		fmt.Println(t8)

		t9, err := experiments.AblationRecompute(setup, model.OPT175B(), scale)
		check(err)
		fmt.Println(t9)

		t10, err := experiments.HardwareEvolution(setup, model.OPT175B(), 16)
		check(err)
		fmt.Println(t10)
	}
	if run("sweeps") {
		scale := 8
		if !*quick {
			scale = 16
		}
		_, t1, err := experiments.SweepBatch(setup, model.OPT175B(), scale, []int{4, 8, 16, 32})
		check(err)
		fmt.Println(t1)
		_, t2, err := experiments.SweepSeqLen(setup, model.OPT175B(), scale, []int{512, 1024, 2048, 4096})
		check(err)
		fmt.Println(t2)
		t3, err := experiments.RealTokenThroughput(setup, model.OPT175B(), scale)
		check(err)
		fmt.Println(t3)
	}

	if !anyRan(*exp) {
		fmt.Fprintf(os.Stderr, "primebench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *cacheDir != "" {
		check(core.DefaultSearchCache.Save(*cacheDir))
		n, e := core.DefaultSearchCache.Sizes()
		fmt.Printf("saved search cache to %s (%d node entries, %d edge matrices)\n", *cacheDir, n, e)
	}
	fmt.Printf("primebench finished in %s\n", time.Since(start).Round(time.Millisecond))
}

// requireWarm verifies a fully warm run: no node evaluations or edge-matrix
// builds anywhere, and at least one cross-call hit to prove the cache was
// actually consulted.
func requireWarm(rows []experiments.Table2Row) error {
	for _, r := range rows {
		if r.Stats.NodeEvals != 0 || r.Stats.EdgeMatsBuilt != 0 {
			return fmt.Errorf("require-warm: %s@%d recomputed %d node evals, %d edge matrices",
				r.Model, r.Scale, r.Stats.NodeEvals, r.Stats.EdgeMatsBuilt)
		}
		if r.Stats.CrossCallNodeHits+r.Stats.CrossCallEdgeHits == 0 {
			return fmt.Errorf("require-warm: %s@%d reports no cross-call hits", r.Model, r.Scale)
		}
	}
	return nil
}

func anyRan(exp string) bool {
	known := "all fig2a fig2b fig4 table1 fig7 fig8 fig9 fig10 table2 ablations sweeps"
	for _, k := range strings.Fields(known) {
		if exp == k {
			return true
		}
	}
	return false
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "primebench:", err)
		os.Exit(1)
	}
}
