// Remote client mode: -serve-addr points the table2 sweep at a running
// primepard daemon instead of searching in-process. Each (structure, scale)
// cell becomes a POST /v1/plan; the daemon's shared cross-call cache then
// plays the role DefaultSearchCache plays locally, so the second sweep
// against one daemon is fully warm. The rows carry the daemon's digests and
// search stats, so -check-golden and -require-warm work unchanged against a
// remote server.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/report"
)

// planRequest and planResponse mirror primepard's wire types
// (cmd/primepard/server.go); only the fields this client uses are declared,
// and the daemon's DisallowUnknownFields applies to requests, not responses,
// so the two commands can evolve their optional fields independently.
type planRequest struct {
	Model          string     `json:"model"`
	Devices        int        `json:"devices"`
	DevicesPerNode int        `json:"devices_per_node,omitempty"`
	Profile        string     `json:"profile,omitempty"`
	Topology       string     `json:"topology,omitempty"`
	Links          []linkSpec `json:"links,omitempty"`
	Alpha          float64    `json:"alpha,omitempty"`
	BudgetMS       int        `json:"budget_ms,omitempty"`
	Batch          int        `json:"batch,omitempty"`
	Priority       int        `json:"priority,omitempty"`
	DeadlineMS     int        `json:"deadline_ms,omitempty"`
}

// linkSpec mirrors primepard's custom-link wire tier (island width in
// devices, -1 = remainder on the outermost tier).
type linkSpec struct {
	Name      string  `json:"name,omitempty"`
	Devices   int     `json:"devices"`
	Bandwidth float64 `json:"bandwidth"`
	Latency   float64 `json:"latency"`
}

// wireMachine renders a local Setup profile as the daemon's
// profile/topology/links request fields: the preset name (custom-link
// suffix stripped — the daemon re-appends it), a topology override only
// when it differs from the preset's own, and the Links list converted from
// bit counts back to island widths.
func wireMachine(p device.Profile) (profile, topology string, links []linkSpec) {
	profile = strings.TrimSuffix(p.Name, "+custom-links")
	if base, err := device.ProfileByName(profile); err == nil && base.Topology != p.Topology {
		topology = p.Topology.String()
	}
	for _, t := range p.Links {
		w := -1
		if t.Bits != -1 {
			w = 1 << t.Bits
		}
		links = append(links, linkSpec{Name: t.Name, Devices: w, Bandwidth: t.Bandwidth, Latency: t.Latency})
	}
	return profile, topology, links
}

type planResponse struct {
	Digest    string           `json:"digest"`
	Stats     core.SearchStats `json:"stats"`
	ElapsedMS float64          `json:"elapsed_ms"`
	Deduped   bool             `json:"deduped,omitempty"`
}

// errorEnvelope mirrors the daemon's uniform non-200 body.
type errorEnvelope struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Retryable    bool   `json:"retryable"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// httpClient is the one client every remote mode shares. A fresh
// &http.Client{} per call rides http.DefaultTransport, whose
// DefaultMaxIdleConnsPerHost of 2 forces a burst of N concurrent clients to
// churn TCP connections — the handshakes then pollute warm-probe latency
// percentiles with connection setup that has nothing to do with the daemon.
// One shared transport with a per-host idle pool sized for -burst keeps every
// worker on a kept-alive connection.
var httpClient = newHTTPClient()

func newHTTPClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 0 // no global cap; the per-host pool is the limit
	tr.MaxIdleConnsPerHost = 64
	return &http.Client{Timeout: 20 * time.Minute, Transport: tr}
}

// normalizeAddr accepts host:port or a full URL.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		return "http://" + addr
	}
	return addr
}

// remoteTable2 runs the Table 2 sweep (the same three structures
// experiments.Table2 uses, at setup's scales) against a primepard daemon.
// Time is the SERVER's search wall time, not the round trip, so the table
// stays comparable with local runs.
func remoteTable2(addr string, setup experiments.Setup) ([]experiments.Table2Row, string, error) {
	addr = normalizeAddr(addr)
	structures := []model.Config{model.OPT175B(), model.Llama2_70B(), model.BLOOM176B()}
	client := httpClient
	profile, topology, links := wireMachine(setup.Profile)
	var rows []experiments.Table2Row
	t := report.NewTable(fmt.Sprintf("Table 2 — Optimization time (ms, served by %s)", addr),
		"model", "4", "8", "16", "32")
	for _, cfg := range structures {
		cells := []interface{}{cfg.Name}
		for _, scale := range setup.Scales {
			resp, err := postPlan(client, addr, planRequest{
				Model:          cfg.Name,
				Devices:        scale,
				DevicesPerNode: setup.DevicesPerNode,
				Profile:        profile,
				Topology:       topology,
				Links:          links,
				Alpha:          setup.Alpha,
				BudgetMS:       int(setup.SearchBudget / time.Millisecond),
			})
			if err != nil {
				return nil, "", fmt.Errorf("%s@%d: %w", cfg.Name, scale, err)
			}
			rows = append(rows, experiments.Table2Row{
				Model:  cfg.Name,
				Scale:  scale,
				Time:   time.Duration(resp.ElapsedMS * float64(time.Millisecond)),
				Stats:  resp.Stats,
				Digest: resp.Digest,
			})
			cells = append(cells, fmt.Sprintf("%.1f", resp.ElapsedMS))
		}
		for len(cells) < 5 {
			cells = append(cells, "-")
		}
		t.AddRow(cells...)
	}
	return rows, t.String(), nil
}

// postPlanRaw performs one /v1/plan exchange and returns the undecoded
// pieces: status, headers and body.
func postPlanRaw(client *http.Client, addr string, req planRequest) (int, http.Header, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, nil, err
	}
	httpResp, err := client.Post(addr+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 8<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return httpResp.StatusCode, httpResp.Header, data, nil
}

// postPlan is the simple success-or-error client the sweep uses: any non-200
// becomes an error carrying the envelope's code and message.
func postPlan(client *http.Client, addr string, req planRequest) (*planResponse, error) {
	status, _, data, err := postPlanRaw(client, addr, req)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		var e errorEnvelope
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			return nil, fmt.Errorf("server returned %d %s: %s", status, e.Code, e.Message)
		}
		return nil, fmt.Errorf("server returned %d", status)
	}
	var resp planResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("bad /v1/plan response: %w", err)
	}
	return &resp, nil
}
