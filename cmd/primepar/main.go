// Command primepar searches the optimal spatial-temporal tensor partition
// strategy for a transformer model on a described cluster, prints it in the
// paper's 𝒫 notation, and simulates one training iteration.
//
// Usage:
//
//	primepar -model OPT-175B -gpus 16 -per-node 4
//	primepar -model Llama2-70B -gpus 32 -compare
//	primepar -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/primepar"
)

func main() {
	var (
		modelName = flag.String("model", "OPT-6.7B", "model name (see -list)")
		gpus      = flag.Int("gpus", 8, "number of devices (power of two)")
		perNode   = flag.Int("per-node", 4, "devices per node")
		profile   = flag.String("profile", "v100-cluster", "machine preset (see -list)")
		topology  = flag.String("topology", "", "override the profile's interconnect shape (switch, torus-2d)")
		links     = flag.String("links", "", "custom link hierarchy, innermost first: name:width:bandwidth:latency,... (width in devices, \"rest\" on the last tier absorbs the remainder), e.g. nvlink:4:300e9:5e-6,fabric:rest:25e9:15e-6")
		batch     = flag.Int("batch", 0, "micro-batch override (0 = model default)")
		alpha     = flag.Float64("alpha", 1e-12, "latency↔memory weight of Eq. 7 (s/byte)")
		spatial   = flag.Bool("spatial-only", false, "restrict to conventional partition-by-dimension")
		compare   = flag.Bool("compare", false, "also evaluate Megatron-LM and the spatial-only optimum")
		list      = flag.Bool("list", false, "list available models and exit")
		savePath  = flag.String("save", "", "write the searched plan to this JSON file")
		loadPath  = flag.String("load", "", "load a plan from JSON instead of searching")
		tracePath = flag.String("trace", "", "write a Chrome trace of the simulated iteration")
		timeline  = flag.Bool("timeline", false, "print an ASCII kernel timeline")
		explain   = flag.Bool("explain", false, "print per-operator cost attribution")
	)
	flag.Parse()

	if *list {
		for _, m := range primepar.Models() {
			fmt.Printf("%-12s layers=%-3d hidden=%-6d heads=%-4d seq=%-5d params≈%.3g\n",
				m.Name, m.Layers, m.Hidden, m.Heads, m.SeqLen, m.Params())
		}
		fmt.Println()
		for _, p := range primepar.Profiles() {
			extra := ""
			if len(p.Links) > 0 {
				extra = fmt.Sprintf("  link tiers=%d", len(p.Links))
			}
			if len(p.Classes) > 0 {
				extra += fmt.Sprintf("  compute classes=%d", len(p.Classes))
			}
			fmt.Printf("%-16s topology=%-8s flops=%.3g  intra=%.3gB/s inter=%.3gB/s%s\n",
				p.Name, p.Topology, p.FLOPs, p.IntraBW, p.InterBW, extra)
		}
		return
	}

	var plan *primepar.Plan
	var cfg primepar.Config
	var cluster *primepar.Cluster
	if *loadPath != "" {
		var err error
		plan, err = primepar.LoadPlan(*loadPath)
		if err != nil {
			fatal(err)
		}
		cfg, cluster = plan.Model, plan.Cluster
		fmt.Printf("loaded plan from %s\n", *loadPath)
	} else {
		var err error
		cfg, err = primepar.ModelByName(*modelName)
		if err != nil {
			fatal(err)
		}
		if *batch > 0 {
			cfg = cfg.WithBatch(*batch)
		}
		prof, err := primepar.ProfileByName(*profile)
		if err != nil {
			fatal(err)
		}
		if *topology != "" {
			topo, err := primepar.ParseTopology(*topology)
			if err != nil {
				fatal(err)
			}
			prof.Topology = topo
		}
		if *links != "" {
			tiers, err := primepar.ParseLinksSpec(*links)
			if err != nil {
				fatal(err)
			}
			prof.Links = tiers
			prof.Name += "+custom-links"
		}
		cluster, err = primepar.NewClusterWithProfile(*gpus, *perNode, prof)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		plan, err = primepar.Search(cfg, cluster, primepar.Options{Alpha: *alpha, SpatialOnly: *spatial})
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan.Describe())
		fmt.Printf("  search time: %s\n\n", time.Since(start))
	}
	if *savePath != "" {
		if err := plan.Save(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("plan saved to %s\n", *savePath)
	}
	if warns, err := plan.Check(); err != nil {
		fatal(err)
	} else {
		for _, w := range warns {
			fmt.Printf("  warning: %s\n", w)
		}
		if len(warns) > 0 {
			fmt.Println()
		}
	}

	rep, err := plan.SimulateDetailed()
	if err != nil {
		fatal(err)
	}
	tokens := plan.TokensPerIteration()
	printReport("PrimePar", rep, tokens)
	if *timeline {
		fmt.Println(trace.ASCII(rep.Segments, 100))
	}
	if *explain {
		out, err := plan.Explain()
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	}
	if *tracePath != "" {
		data, err := trace.ChromeJSON(rep.Segments)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("Chrome trace written to %s (open in chrome://tracing)\n", *tracePath)
	}

	if *compare {
		mega, err := primepar.MegatronPlan(cfg, cluster, -1)
		if err != nil {
			fatal(err)
		}
		mrep, err := mega.Simulate()
		if err != nil {
			fatal(err)
		}
		printReport("Megatron-LM (best d)", mrep, tokens)

		alpa, err := primepar.Search(cfg, cluster, primepar.Options{Alpha: *alpha, SpatialOnly: true})
		if err != nil {
			fatal(err)
		}
		arep, err := alpa.Simulate()
		if err != nil {
			fatal(err)
		}
		printReport("Spatial-only optimum (Alpa-like)", arep, tokens)

		fmt.Printf("PrimePar speedup vs Megatron-LM: %.2fx, peak memory ratio: %.2f\n",
			rep.Throughput(tokens)/mrep.Throughput(tokens),
			rep.PeakMemoryBytes/mrep.PeakMemoryBytes)
	}
}

func printReport(name string, r *primepar.Report, tokens float64) {
	fmt.Printf("%s — simulated training iteration:\n", name)
	fmt.Printf("  iteration:   %s  (%.0f tokens/s)\n", report.Seconds(r.IterationTime), r.Throughput(tokens))
	fmt.Printf("  compute:     %s\n", report.Seconds(r.Compute))
	fmt.Printf("  all-reduce:  %s  (%.1f%% of iteration)\n", report.Seconds(r.Collective), 100*r.CollectiveShare())
	fmt.Printf("  ring p2p:    %s total, %s exposed\n", report.Seconds(r.RingTotal), report.Seconds(r.RingExposed))
	fmt.Printf("  resharding:  %s\n", report.Seconds(r.Redistribution))
	fmt.Printf("  peak memory: %s per device\n\n", report.Bytes(r.PeakMemoryBytes))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "primepar:", err)
	os.Exit(1)
}
