package primepar

import (
	"strings"
	"testing"
)

func TestModelsAndLookup(t *testing.T) {
	if len(Models()) != 6 {
		t.Fatalf("Models() = %d entries, want 6", len(Models()))
	}
	cfg, err := ModelByName("Llama2-70B")
	if err != nil || cfg.Layers != 80 {
		t.Fatalf("ModelByName: %+v, %v", cfg, err)
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestNewCluster(t *testing.T) {
	c, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices != 8 || c.NumNodes() != 2 {
		t.Fatalf("cluster misbuilt: %+v", c)
	}
	if _, err := NewCluster(5, 4); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
}

func TestSearchSimulateDescribe(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Search(OPT6B7(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Seqs) != 13 {
		t.Fatalf("plan has %d node strategies", len(plan.Seqs))
	}
	if plan.PredictedCost <= 0 {
		t.Fatal("non-positive predicted cost")
	}
	rep, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.IterationTime <= 0 {
		t.Fatal("degenerate simulation")
	}
	desc := plan.Describe()
	for _, want := range []string{"PrimePar", "fc1", "qkv", "𝒫"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}
	if plan.TokensPerIteration() != float64(8*2048) {
		t.Fatalf("TokensPerIteration = %v", plan.TokensPerIteration())
	}
}

func TestSearchOptions(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	spatial, err := Search(OPT175B(), cluster, Options{SpatialOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if spatial.UsesPrime() {
		t.Fatal("spatial-only plan uses Prime")
	}
	full, err := Search(OPT175B(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if full.PredictedCost > spatial.PredictedCost {
		t.Fatalf("full space (%v) worse than spatial-only (%v)",
			full.PredictedCost, spatial.PredictedCost)
	}
	noBatch, err := Search(OPT6B7(), cluster, Options{NoBatchSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range noBatch.Seqs {
		// Batch axis is axis 0 on every node of the block graph.
		if s.NumSlices(0) > 1 {
			t.Fatal("NoBatchSplit violated")
		}
	}
}

func TestMegatronPlan(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := MegatronPlan(OPT6B7(), cluster, -1)
	if err != nil {
		t.Fatal(err)
	}
	if auto.UsesPrime() {
		t.Fatal("Megatron plan uses Prime")
	}
	fixed, err := MegatronPlan(OPT6B7(), cluster, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auto.PredictedCost > fixed.PredictedCost+1e-12 {
		t.Fatal("auto-selected Megatron worse than a fixed configuration")
	}
	if _, err := MegatronPlan(OPT6B7(), cluster, 9); err == nil {
		t.Fatal("absurd dBits accepted")
	}
}

func TestEvaluate3D(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	c3 := Config3D{P: 2, D: 2, M: 2, Microbatch: 2, GlobalBatch: 32}
	prime, err := Evaluate3D(OPT6B7(), cluster, c3)
	if err != nil {
		t.Fatal(err)
	}
	mega, err := Evaluate3DMegatron(OPT6B7(), cluster, c3)
	if err != nil {
		t.Fatal(err)
	}
	if prime.Throughput < mega.Throughput*0.999 {
		t.Fatalf("PrimePar 3D (%v) below Megatron (%v)", prime.Throughput, mega.Throughput)
	}
	best, err := Best3D(OPT6B7(), cluster, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if best.Throughput < prime.Throughput*0.999 {
		t.Fatal("Best3D returned a sub-optimal configuration")
	}
}

func TestSearchRejectsMultipleOptions(t *testing.T) {
	cluster, _ := NewCluster(4, 4)
	if _, err := Search(OPT6B7(), cluster, Options{}, Options{}); err == nil {
		t.Fatal("multiple Options accepted")
	}
}

func TestVerifyTraining(t *testing.T) {
	for k := 1; k <= 2; k++ {
		maxErr, err := VerifyTraining(k, 8, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		if maxErr > 1e-9 {
			t.Fatalf("k=%d: semantics deviation %g", k, maxErr)
		}
	}
	if _, err := VerifyTraining(1, 7, 8, 8); err == nil {
		t.Fatal("non-divisible size accepted")
	}
}

func TestPlanCheck(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A small model on few devices fits comfortably: no memory warning,
	// but OPT's batch of 8 may legitimately slice unevenly — assert only
	// that Check runs and the memory warning logic fires for a huge model.
	small, err := Search(OPT6B7(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.Check(); err != nil {
		t.Fatal(err)
	}
	big, err := Search(OPT175B(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	warns, err := big.Check()
	if err != nil {
		t.Fatal(err)
	}
	foundMem := false
	for _, w := range warns {
		if strings.Contains(w, "capacity") {
			foundMem = true
		}
	}
	if !foundMem {
		t.Fatalf("175B without pipeline must overflow 32 GiB; warnings: %v", warns)
	}
	// Arity errors are hard failures, not warnings.
	broken := *big
	broken.Seqs = big.Seqs[:3]
	if _, err := broken.Check(); err == nil {
		t.Fatal("truncated plan accepted")
	}
}

func TestPlanExplain(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Search(OPT175B(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fc1", "qkv", "𝒫", "memory"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}
