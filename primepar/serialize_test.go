package primepar

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Search(OPT175B(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Model.Name != plan.Model.Name || loaded.Cluster.NumDevices != 8 {
		t.Fatalf("round-trip lost identity: %+v", loaded.Model)
	}
	if len(loaded.Seqs) != len(plan.Seqs) {
		t.Fatalf("round-trip lost strategies")
	}
	for i := range plan.Seqs {
		if loaded.Seqs[i].Key() != plan.Seqs[i].Key() {
			t.Fatalf("node %d strategy changed: %v vs %v", i, loaded.Seqs[i], plan.Seqs[i])
		}
	}
	if loaded.PredictedCost != plan.PredictedCost {
		t.Fatal("round-trip lost predicted cost")
	}
	// The loaded plan must simulate identically.
	a, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime != b.IterationTime {
		t.Fatalf("loaded plan simulates differently: %v vs %v", a.IterationTime, b.IterationTime)
	}
}

func TestLoadPlanRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Wrong version.
	v := filepath.Join(dir, "v.json")
	if err := os.WriteFile(v, []byte(`{"format_version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(v); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Unknown model.
	m := filepath.Join(dir, "m.json")
	if err := os.WriteFile(m, []byte(`{"format_version":1,"model":"GPT-9","devices":4,"devices_per_node":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(m); err == nil {
		t.Fatal("unknown model accepted")
	}
}
