package primepar

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	cluster, err := NewCluster(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Search(OPT175B(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Model.Name != plan.Model.Name || loaded.Cluster.NumDevices != 8 {
		t.Fatalf("round-trip lost identity: %+v", loaded.Model)
	}
	if len(loaded.Seqs) != len(plan.Seqs) {
		t.Fatalf("round-trip lost strategies")
	}
	for i := range plan.Seqs {
		if loaded.Seqs[i].Key() != plan.Seqs[i].Key() {
			t.Fatalf("node %d strategy changed: %v vs %v", i, loaded.Seqs[i], plan.Seqs[i])
		}
	}
	if loaded.PredictedCost != plan.PredictedCost {
		t.Fatal("round-trip lost predicted cost")
	}
	if loaded.LayerCost != plan.LayerCost {
		t.Fatal("round-trip lost layer cost")
	}
	if loaded.Digest() != plan.Digest() {
		t.Fatalf("round-trip changed digest: %s vs %s", loaded.Digest(), plan.Digest())
	}
	// The loaded plan must simulate identically.
	a, err := plan.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime != b.IterationTime {
		t.Fatalf("loaded plan simulates differently: %v vs %v", a.IterationTime, b.IterationTime)
	}
}

// TestLoadPlanDetectsTamper: a saved plan embeds a digest over its strategy
// content; editing any digested field after Save must fail the load.
func TestLoadPlanDetectsTamper(t *testing.T) {
	cluster, err := NewCluster(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Search(OPT6B7(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Digest() == "" {
		t.Fatal("searched plan has empty digest")
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := plan.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["predicted_cost"] = raw["predicted_cost"].(float64) * 2
	edited, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(path); err == nil {
		t.Fatal("edited plan accepted")
	} else if !strings.Contains(err.Error(), "digest") {
		t.Fatalf("tamper error does not mention the digest: %v", err)
	}
	// Files without a digest (older saves within version 1) still load.
	delete(raw, "digest")
	raw["predicted_cost"] = plan.PredictedCost
	legacy, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(path); err != nil {
		t.Fatalf("digest-less file rejected: %v", err)
	}
}

func TestLoadPlanRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Wrong version.
	v := filepath.Join(dir, "v.json")
	if err := os.WriteFile(v, []byte(`{"format_version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(v); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Unknown model.
	m := filepath.Join(dir, "m.json")
	if err := os.WriteFile(m, []byte(`{"format_version":1,"model":"GPT-9","devices":4,"devices_per_node":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(m); err == nil {
		t.Fatal("unknown model accepted")
	}
}
