package primepar

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/model"
	"repro/internal/partition"
)

// planFile is the on-disk JSON representation of a Plan: everything needed
// to redeploy the strategy on an equivalent cluster.
type planFile struct {
	FormatVersion int     `json:"format_version"`
	System        string  `json:"system"`
	ModelName     string  `json:"model"`
	Batch         int     `json:"batch"`
	Devices       int     `json:"devices"`
	PerNode       int     `json:"devices_per_node"`
	Profile       Profile `json:"profile"`
	PredictedCost float64 `json:"predicted_cost"`
	// LayerCost and Digest were added within format version 1: both are
	// optional on read (older files omit them), so the version stays 1.
	LayerCost float64         `json:"layer_cost,omitempty"`
	Digest    string          `json:"digest,omitempty"`
	Seqs      []partition.Seq `json:"strategies"`
}

const planFormatVersion = 1

// Save writes the plan as JSON to path.
func (p *Plan) Save(path string) error {
	pf := planFile{
		FormatVersion: planFormatVersion,
		System:        p.system,
		ModelName:     p.Model.Name,
		Batch:         p.Model.Batch,
		Devices:       p.Cluster.NumDevices,
		PerNode:       p.Cluster.DevicesPerNode,
		Profile:       p.Cluster.Profile,
		PredictedCost: p.PredictedCost,
		LayerCost:     p.LayerCost,
		Digest:        p.Digest(),
		Seqs:          p.Seqs,
	}
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return fmt.Errorf("primepar: encoding plan: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPlan reads a plan saved with Save, rebuilds the model and cluster it
// was searched for, and validates every strategy against the graph.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("primepar: reading plan: %w", err)
	}
	var pf planFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("primepar: decoding plan: %w", err)
	}
	if pf.FormatVersion != planFormatVersion {
		return nil, fmt.Errorf("primepar: plan format version %d unsupported (want %d)",
			pf.FormatVersion, planFormatVersion)
	}
	cfg, err := model.ByName(pf.ModelName)
	if err != nil {
		return nil, err
	}
	if pf.Batch > 0 {
		cfg = cfg.WithBatch(pf.Batch)
	}
	cluster, err := NewClusterWithProfile(pf.Devices, pf.PerNode, pf.Profile)
	if err != nil {
		return nil, err
	}
	g, err := model.BuildBlock(cfg)
	if err != nil {
		return nil, err
	}
	if len(pf.Seqs) != len(g.Nodes) {
		return nil, fmt.Errorf("primepar: plan has %d strategies for a %d-node graph",
			len(pf.Seqs), len(g.Nodes))
	}
	for i, s := range pf.Seqs {
		if err := s.Validate(len(g.Nodes[i].Axes), cluster.Bits()); err != nil {
			return nil, fmt.Errorf("primepar: node %d (%s): %w", i, g.Nodes[i].Name, err)
		}
	}
	p := &Plan{
		Model:         cfg,
		Cluster:       cluster,
		Seqs:          pf.Seqs,
		PredictedCost: pf.PredictedCost,
		LayerCost:     pf.LayerCost,
		system:        pf.System,
	}
	// A digest, when present, must match the strategy content exactly — a
	// mismatch means the file was edited or corrupted after Save.
	if pf.Digest != "" {
		if got := p.Digest(); got != pf.Digest {
			return nil, fmt.Errorf("primepar: plan digest mismatch (file %s, content %s): file corrupted or edited",
				pf.Digest, got)
		}
	}
	return p, nil
}
