package primepar_test

import (
	"fmt"
	"log"

	"repro/primepar"
)

// Search a strategy for a model on a simulated cluster and inspect it.
func ExampleSearch() {
	cluster, err := primepar.NewCluster(8, 4)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := primepar.Search(primepar.OPT175B(), cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", len(plan.Seqs))
	fmt.Println("uses P_{2^k x 2^k}:", plan.UsesPrime())
	// Output:
	// nodes: 13
	// uses P_{2^k x 2^k}: true
}

// Numerically verify that the spatial-temporal primitive preserves exact
// training semantics, with one goroutine per device.
func ExampleVerifyTraining() {
	maxErr, err := primepar.VerifyTraining(1, 64, 64, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("semantics preserved:", maxErr < 1e-9)
	// Output:
	// semantics preserved: true
}

// Compare a searched plan against the Megatron-LM baseline.
func ExampleMegatronPlan() {
	cluster, err := primepar.NewCluster(16, 4)
	if err != nil {
		log.Fatal(err)
	}
	mega, err := primepar.MegatronPlan(primepar.OPT175B(), cluster, -1)
	if err != nil {
		log.Fatal(err)
	}
	prime, err := primepar.Search(primepar.OPT175B(), cluster)
	if err != nil {
		log.Fatal(err)
	}
	mr, err := mega.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	pr, err := prime.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PrimePar faster:", pr.IterationTime < mr.IterationTime)
	fmt.Println("PrimePar leaner:", pr.PeakMemoryBytes < mr.PeakMemoryBytes)
	// Output:
	// PrimePar faster: true
	// PrimePar leaner: true
}
