// Package primepar is the public API of the PrimePar reproduction: given a
// transformer model and a cluster description, it searches the
// spatial-temporal tensor partition space (paper: "PrimePar: Efficient
// Spatial-temporal Tensor Partitioning for Large Transformer Model
// Training", ASPLOS 2024) for the optimal training strategy and simulates
// its execution.
//
// Quick start:
//
//	cluster, _ := primepar.NewCluster(8, 4)
//	plan, _ := primepar.Search(primepar.OPT6B7(), cluster)
//	fmt.Println(plan.Describe())
//	rep, _ := plan.Simulate()
//	fmt.Printf("tokens/s: %.0f\n", rep.Throughput(plan.TokensPerIteration()))
//
// The heavy lifting lives in the internal packages: partition (DSI algebra,
// the P_{2^k×2^k} primitive), core (segmented dynamic programming), cost
// (Eq. 7–10 cost model), sim (discrete-event cluster simulator), runtime
// (numerically-verified SPMD executor), baseline (Megatron-LM / Alpa-style
// comparators) and pipeline (3D parallelism).
package primepar

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Config describes a transformer model and training workload.
type Config = model.Config

// Cluster describes the machine: 2^n homogeneous devices in nodes.
type Cluster = device.Cluster

// Profile holds hardware latency/bandwidth coefficients.
type Profile = device.Profile

// LinkTier is one level of a switch-fabric hierarchy (Profile.Links).
type LinkTier = device.LinkTier

// ComputeClass is one homogeneous slice of a heterogeneous machine
// (Profile.Classes).
type ComputeClass = device.ComputeClass

// Topology enumerates interconnect shapes (switch, torus-2d).
type Topology = device.Topology

// Seq is a tensor partition sequence 𝒫.
type Seq = partition.Seq

// SearchStats instruments one strategy search: cache effectiveness, work
// volume and wall time per DP stage (see internal/core.SearchStats).
type SearchStats = core.SearchStats

// WorkersEnv is the environment variable overriding the search worker count
// when Options leave it unset (e.g. PRIMEPAR_WORKERS=1 forces serial).
const WorkersEnv = core.WorkersEnv

// Report is a simulated training-iteration measurement.
type Report = sim.Report

// The paper's six evaluation models.
var (
	OPT6B7    = model.OPT6B7
	OPT175B   = model.OPT175B
	Llama2_7B = model.Llama2_7B
	Llama270B = model.Llama2_70B
	BLOOM7B1  = model.BLOOM7B1
	BLOOM176B = model.BLOOM176B
)

// Models returns the paper's evaluation models.
func Models() []Config { return model.All() }

// ModelByName looks up a model by its paper name (e.g. "OPT-175B").
func ModelByName(name string) (Config, error) { return model.ByName(name) }

// V100Profile is the paper's testbed hardware profile.
func V100Profile() Profile { return device.V100Profile() }

// Profiles returns every named machine preset (V100 testbed, A100, TPU-v4
// torus, mixed A100+V100 fleet, three-tier A100 superpod).
func Profiles() []Profile { return device.Profiles() }

// ProfileByName resolves a preset name (e.g. "a100-cluster") to its Profile.
func ProfileByName(name string) (Profile, error) { return device.ProfileByName(name) }

// ParseTopology maps "switch" or "torus-2d" to a Topology value.
func ParseTopology(s string) (Topology, error) { return device.ParseTopology(s) }

// ParseLinksSpec parses a custom link hierarchy from its CLI encoding
// (comma-separated name:width:bandwidth:latency tiers, innermost first;
// width "rest" on the last tier absorbs the remaining devices).
func ParseLinksSpec(spec string) ([]LinkTier, error) { return device.ParseLinksSpec(spec) }

// NewCluster builds a cluster of `devices` GPUs with `perNode` per node
// using the V100 profile.
func NewCluster(devices, perNode int) (*Cluster, error) {
	return device.NewCluster(devices, perNode, device.V100Profile())
}

// NewClusterWithProfile builds a cluster with custom hardware coefficients.
func NewClusterWithProfile(devices, perNode int, p Profile) (*Cluster, error) {
	return device.NewCluster(devices, perNode, p)
}

// Options tune the search.
type Options struct {
	// Alpha is the latency↔memory weight of the paper's Eq. 7
	// (seconds per byte of per-device peak memory).
	Alpha float64
	// SpatialOnly restricts the space to conventional partition-by-
	// dimension (the Alpa-like baseline).
	SpatialOnly bool
	// NoBatchSplit forbids partitioning the batch axis (used when data
	// parallelism is controlled externally, e.g. 3D configurations).
	NoBatchSplit bool
	// MaxPrimeK caps the spatial-temporal primitive's order (default 2,
	// i.e. up to P_{4×4}).
	MaxPrimeK int
}

// Plan is an optimized parallel training strategy for a model on a cluster.
type Plan struct {
	Model   Config
	Cluster *Cluster
	// Seqs assigns one partition sequence to each node of the
	// transformer-block graph (see internal/model for the node layout).
	Seqs []Seq
	// PredictedCost is the optimizer's Eq. 10 objective for all layers.
	PredictedCost float64
	// LayerCost is the optimal single-layer DP cost (zero for baseline
	// plans, which report only the overall objective).
	LayerCost float64
	// SpaceSizes records the per-node candidate-space sizes |P|.
	SpaceSizes []int
	// Stats instruments the search that produced the plan (zero for
	// baseline plans, which perform no search).
	Stats SearchStats

	system string
}

// Search finds the optimal spatial-temporal partition strategy for cfg on
// the cluster (the PrimePar system). At most one Options value may be
// passed; passing more returns an error.
func Search(cfg Config, cluster *Cluster, opts ...Options) (*Plan, error) {
	o, err := searchOptions(opts)
	if err != nil {
		return nil, err
	}
	g, err := model.BuildBlock(cfg)
	if err != nil {
		return nil, err
	}
	m := cost.NewModel(cluster)
	m.Alpha = o.Alpha
	opt := core.NewOptimizer(m)
	opt.Opts.AllowPrime = !o.SpatialOnly
	opt.Opts.AllowBatchSplit = !o.NoBatchSplit
	if o.MaxPrimeK > 0 {
		opt.Opts.MaxPrimeK = o.MaxPrimeK
	}
	strat, err := opt.Plan(context.Background(), core.PlanRequest{Graph: g, Layers: cfg.Layers})
	if err != nil {
		return nil, err
	}
	name := "PrimePar"
	if o.SpatialOnly {
		name = "spatial-only"
	}
	return &Plan{
		Model:         cfg,
		Cluster:       cluster,
		Seqs:          strat.Seqs,
		PredictedCost: strat.TotalCost,
		LayerCost:     strat.LayerCost,
		SpaceSizes:    strat.SpaceSizes,
		Stats:         strat.Stats,
		system:        name,
	}, nil
}

func searchOptions(opts []Options) (Options, error) {
	if len(opts) > 1 {
		return Options{}, fmt.Errorf("primepar: pass at most one Options value, got %d", len(opts))
	}
	o := Options{Alpha: 1e-12}
	if len(opts) == 1 {
		o = opts[0]
	}
	return o, nil
}

// MegatronPlan builds the Megatron-LM baseline strategy with 2^dBits-way
// data parallelism (pass dBits=-1 to auto-select the fastest).
func MegatronPlan(cfg Config, cluster *Cluster, dBits int) (*Plan, error) {
	g, err := model.BuildBlock(cfg)
	if err != nil {
		return nil, err
	}
	m := cost.NewModel(cluster)
	var seqs []Seq
	if dBits < 0 {
		best, err := baseline.BestMegatron(m, g)
		if err != nil {
			return nil, err
		}
		seqs = best.Seqs
	} else {
		seqs, err = baseline.Megatron(g, cluster.Bits(), dBits)
		if err != nil {
			return nil, err
		}
	}
	return &Plan{
		Model:         cfg,
		Cluster:       cluster,
		Seqs:          seqs,
		PredictedCost: m.Overall(g, seqs),
		system:        "Megatron-LM",
	}, nil
}

// Simulate executes one training iteration of the plan on the discrete-
// event cluster simulator and reports latency breakdown and peak memory.
func (p *Plan) Simulate() (*Report, error) {
	return p.simulate(false)
}

// SimulateDetailed additionally records the per-kernel timeline in
// Report.Segments (exportable via internal/trace).
func (p *Plan) SimulateDetailed() (*Report, error) {
	return p.simulate(true)
}

func (p *Plan) simulate(segments bool) (*Report, error) {
	g, err := model.BuildBlock(p.Model)
	if err != nil {
		return nil, err
	}
	s := sim.New(p.Cluster)
	s.RecordSegments = segments
	return s.Run(g, p.Seqs, p.Model.Layers)
}

// TokensPerIteration returns the training tokens each iteration processes.
func (p *Plan) TokensPerIteration() float64 {
	return float64(p.Model.Batch) * float64(p.Model.SeqLen)
}

// Describe renders the plan in the paper's Fig. 9 𝒫 notation.
func (p *Plan) Describe() string {
	g, err := model.BuildBlock(p.Model)
	if err != nil {
		return err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s strategy for %s on %d GPUs (%d/node):\n",
		p.system, p.Model.Name, p.Cluster.NumDevices, p.Cluster.DevicesPerNode)
	for i, op := range g.Nodes {
		fmt.Fprintf(&b, "  %-8s 𝒫 = %s\n", op.Name, p.Seqs[i].Format(op.AxisNames()))
	}
	if p.PredictedCost > 0 {
		fmt.Fprintf(&b, "  predicted cost: %.4g s/iteration\n", p.PredictedCost)
	}
	return b.String()
}

// Check statically validates the plan for deployment and returns
// human-readable warnings (empty = clean): strategy/graph arity, bit
// budget, axis divisibility (a slice count that does not divide the axis
// forces ragged kernels), and projected peak memory vs device capacity.
func (p *Plan) Check() ([]string, error) {
	g, err := model.BuildBlock(p.Model)
	if err != nil {
		return nil, err
	}
	if len(p.Seqs) != len(g.Nodes) {
		return nil, fmt.Errorf("primepar: plan has %d strategies for a %d-node graph", len(p.Seqs), len(g.Nodes))
	}
	var warnings []string
	nbits := p.Cluster.Bits()
	for i, op := range g.Nodes {
		seq := p.Seqs[i]
		if err := seq.Validate(len(op.Axes), nbits); err != nil {
			return nil, fmt.Errorf("primepar: node %s: %w", op.Name, err)
		}
		for ax := range op.Axes {
			slices := seq.NumSlices(ax)
			if slices > op.Axes[ax].Size {
				warnings = append(warnings, fmt.Sprintf(
					"%s: axis %s sliced %d ways but has only %d elements",
					op.Name, op.Axes[ax].Name, slices, op.Axes[ax].Size))
			} else if op.Axes[ax].Size%slices != 0 {
				warnings = append(warnings, fmt.Sprintf(
					"%s: axis %s (%d) not divisible by %d slices (ragged kernels)",
					op.Name, op.Axes[ax].Name, op.Axes[ax].Size, slices))
			}
		}
	}
	rep, err := p.Simulate()
	if err != nil {
		return nil, err
	}
	if capacity := p.Cluster.Profile.MemoryCapacity; capacity > 0 && rep.PeakMemoryBytes > capacity {
		warnings = append(warnings, fmt.Sprintf(
			"projected peak memory %.1f GiB exceeds device capacity %.1f GiB — add pipeline stages, recomputation or ZeRO",
			rep.PeakMemoryBytes/(1<<30), capacity/(1<<30)))
	}
	return warnings, nil
}

// Explain renders a per-operator cost attribution table for the plan: each
// node's strategy alongside its simulated compute, collective and ring
// seconds and its modeled memory footprint — the paper's Fig. 9-style
// analysis for any model.
func (p *Plan) Explain() (string, error) {
	g, err := model.BuildBlock(p.Model)
	if err != nil {
		return "", err
	}
	rep, err := p.Simulate()
	if err != nil {
		return "", err
	}
	m := cost.NewModel(p.Cluster)
	t := report.NewTable(fmt.Sprintf("Per-operator attribution — %s on %d GPUs", p.Model.Name, p.Cluster.NumDevices),
		"op", "𝒫", "compute", "all-reduce", "ring", "memory")
	for i, op := range g.Nodes {
		ob := rep.PerOp[op.Name]
		if ob == nil {
			ob = &sim.OpBreakdown{}
		}
		ic := m.IntraCost(op, p.Seqs[i])
		t.AddRow(op.Name, p.Seqs[i].Format(op.AxisNames()),
			report.Seconds(ob.Compute), report.Seconds(ob.Collective),
			report.Seconds(ob.Ring), report.Bytes(ic.MemoryBytes))
	}
	return t.String(), nil
}

// Digest returns a stable hex digest of the strategy content — the exact
// partition sequences and the bit patterns of the predicted costs. Two plans
// with equal digests chose identical strategies; the daemon's /v1/plan and
// /v1/plan/sweep responses report the same digest, so clients can verify
// that a portfolio point matches an individually planned request.
func (p *Plan) Digest() string {
	return experiments.StrategyDigest(&core.Strategy{
		Seqs:      p.Seqs,
		LayerCost: p.LayerCost,
		TotalCost: p.PredictedCost,
		Layers:    p.Model.Layers,
	})
}

// UsesPrime reports whether any operator uses the spatial-temporal
// primitive P_{2^k×2^k}.
func (p *Plan) UsesPrime() bool {
	for _, s := range p.Seqs {
		if s.HasPrime() {
			return true
		}
	}
	return false
}

// VerifyTraining executes one training iteration of a linear operator
// O[M,K] = I[M,N]·W[N,K] partitioned by P_{2^k×2^k} on 4^k goroutine
// "devices" connected by channels — the paper's Fig. 4 orchestration — and
// returns the maximum absolute deviation from serial (unpartitioned)
// training across the forward output, both gradients and the updated
// weights. A tiny result (≈1e-12) certifies that the spatial-temporal
// partition preserves exact training semantics.
func VerifyTraining(k, m, n, kk int) (float64, error) {
	seq := partition.NewSeq(partition.NewPrime(k, runtime.AxM, runtime.AxN, runtime.AxK))
	eng, err := runtime.NewEngine(seq, 2*k, m, n, kk)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(1))
	I := tensor.New(m, n).FillRandom(rng)
	W := tensor.New(n, kk).FillRandom(rng)
	dO := tensor.New(m, kk).FillRandom(rng)
	got, err := eng.Train(I, W, dO, 0.01)
	if err != nil {
		return 0, err
	}
	o, di, dw, wNew := runtime.Serial(I, W, dO, 0.01)
	max := tensor.MaxAbsDiff(got.O, o)
	if e := tensor.MaxAbsDiff(got.DI, di); e > max {
		max = e
	}
	if e := tensor.MaxAbsDiff(got.DW, dw); e > max {
		max = e
	}
	if e := tensor.MaxAbsDiff(eng.AssembleWeights(got.DeviceW), wNew); e > max {
		max = e
	}
	return max, nil
}

// Config3D is a (pipeline, data, model) parallelism configuration.
type Config3D = pipeline.Config3D

// Plan3DRequest parameterizes the joint spatial-temporal 3D search.
type Plan3DRequest = pipeline.Plan3DRequest

// Tensor-parallel system selectors for Plan3DRequest.System.
const (
	SystemMegatron = pipeline.Megatron
	SystemPrimePar = pipeline.PrimePar
)

// Plan3DResult is a jointly optimized 3D deployment: stage boundaries,
// per-stage tensor strategies and the simulated 1F1B schedule breakdown.
type Plan3DResult = pipeline.Plan3D

// Plan3D jointly chooses pipeline-stage boundaries and per-stage PrimePar
// tensor partitions — never worse than the (p,d,m) grid that Best3D scans,
// usually better when the pipeline depth does not divide the layer count.
// Set req.Config to evaluate one legacy configuration, req.Stages /
// req.DataParallel to pin dimensions, or neither to search everything.
func Plan3D(ctx context.Context, cfg Config, cluster *Cluster, req Plan3DRequest) (*Plan3DResult, error) {
	req.Model = cfg
	return pipeline.NewOptimizer(cluster).Plan3D(ctx, req)
}

// Evaluate3D simulates a 3D-parallel deployment of cfg with PrimePar tensor
// parallelism inside each stage.
//
// Deprecated: use Plan3D with Plan3DRequest.Config (ctx-first, shares the
// process-wide search cache, returns per-stage detail). Bit-identical.
func Evaluate3D(cfg Config, cluster *Cluster, c3 Config3D) (*pipeline.Result, error) {
	return pipeline.Evaluate(cfg, cluster, c3, pipeline.PrimePar)
}

// Evaluate3DMegatron simulates the same deployment with Megatron tensor
// parallelism (for comparison).
//
// Deprecated: use Plan3D with Plan3DRequest{Config: &c3, System:
// pipeline.Megatron}. Bit-identical.
func Evaluate3DMegatron(cfg Config, cluster *Cluster, c3 Config3D) (*pipeline.Result, error) {
	return pipeline.Evaluate(cfg, cluster, c3, pipeline.Megatron)
}

// Best3D sweeps all (p,d,m) configurations and returns the fastest.
//
// Deprecated: use Plan3D, which searches the same grid plus uneven stage
// cuts within each configuration.
func Best3D(cfg Config, cluster *Cluster, globalBatch, microbatch int) (*pipeline.Result, error) {
	best, _, err := pipeline.Best(cfg, cluster, globalBatch, microbatch, pipeline.PrimePar)
	return best, err
}
